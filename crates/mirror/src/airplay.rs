//! AirPlay screen mirroring for iOS devices (§3.2: "No equivalent
//! software [to scrcpy] exists for iOS, but a similar functionality can
//! be achieved combining AirPlay Screen Mirroring with (virtual)
//! keyboard keys").
//!
//! Differences from the scrcpy path that matter to measurements:
//!
//! * AirPlay streams over **WiFi** to a receiver on the controller — so
//!   it occupies the network under test *and* keeps the WiFi radio hot,
//!   where scrcpy rides the (measurement-unsafe) USB ADB channel or the
//!   same WiFi;
//! * the sender encodes at a higher default bitrate than the paper's
//!   1 Mbps scrcpy cap;
//! * input cannot come back over AirPlay (it is one-way): remote control
//!   needs the Bluetooth keyboard, which is why the paper pairs them.

use batterylab_device::IosDevice;
use batterylab_sim::SimTime;
use serde::{Deserialize, Serialize};

/// AirPlay sender configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AirPlayConfig {
    /// Video bitrate, bits/s (AirPlay mirrors at several Mbps by default;
    /// receivers can negotiate down).
    pub bitrate_bps: f64,
    /// Frames per second.
    pub fps: f64,
}

impl Default for AirPlayConfig {
    fn default() -> Self {
        AirPlayConfig {
            bitrate_bps: 4_000_000.0,
            fps: 30.0,
        }
    }
}

/// AirPlay session errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AirPlayError {
    /// Already mirroring.
    AlreadyStreaming,
    /// No session active.
    NotStreaming,
}

impl std::fmt::Display for AirPlayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AirPlayError::AlreadyStreaming => write!(f, "AirPlay session already active"),
            AirPlayError::NotStreaming => write!(f, "no AirPlay session"),
        }
    }
}

impl std::error::Error for AirPlayError {}

/// An AirPlay mirroring session from an iOS device to the controller's
/// receiver.
pub struct AirPlayMirror {
    device: IosDevice,
    config: AirPlayConfig,
    streaming: bool,
    produced_until: SimTime,
    total_bytes: u64,
}

impl AirPlayMirror {
    /// Bind (not start) a session.
    pub fn new(device: IosDevice, config: AirPlayConfig) -> Self {
        AirPlayMirror {
            device,
            config,
            streaming: false,
            produced_until: SimTime::ZERO,
            total_bytes: 0,
        }
    }

    /// Whether the stream is live.
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// Total bytes streamed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Start mirroring: arms the device-side encoder (same power hook as
    /// scrcpy — the encoder block doesn't care who asked).
    pub fn start(&mut self) -> Result<(), AirPlayError> {
        if self.streaming {
            return Err(AirPlayError::AlreadyStreaming);
        }
        self.device.with_sim(|s| {
            s.start_mirroring();
        });
        self.produced_until = self.device.with_sim(|s| s.now());
        self.streaming = true;
        Ok(())
    }

    /// Stop mirroring.
    pub fn stop(&mut self) -> Result<u64, AirPlayError> {
        if !self.streaming {
            return Err(AirPlayError::NotStreaming);
        }
        let now = self.device.with_sim(|s| s.now());
        let _ = self.produce_until(now);
        self.device.with_sim(|s| s.stop_mirroring());
        self.streaming = false;
        Ok(self.total_bytes)
    }

    /// Bytes streamed between the last call and `until`. AirPlay's
    /// rate control floors higher than scrcpy's (it keeps a smooth
    /// stream even on static content).
    pub fn produce_until(&mut self, until: SimTime) -> Result<u64, AirPlayError> {
        if !self.streaming {
            return Err(AirPlayError::NotStreaming);
        }
        if until <= self.produced_until {
            return Ok(0);
        }
        let (from, to) = (self.produced_until, until);
        let change = self
            .device
            .with_sim(|s| s.frame_change_trace().mean(from, to));
        let utilisation = (0.25 + 0.85 * change).min(1.0);
        let bytes =
            (self.config.bitrate_bps * utilisation * (to - from).as_secs_f64() / 8.0) as u64;
        self.produced_until = until;
        self.total_bytes += bytes;
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batterylab_device::iphone_7;
    use batterylab_sim::{SimDuration, SimRng};

    fn mirror() -> (IosDevice, AirPlayMirror) {
        let d = iphone_7(&SimRng::new(11), "udid-1");
        let m = AirPlayMirror::new(d.clone(), AirPlayConfig::default());
        (d, m)
    }

    #[test]
    fn lifecycle_and_device_encoder() {
        let (d, mut m) = mirror();
        m.start().unwrap();
        assert!(d.with_sim(|s| s.is_mirroring()));
        assert_eq!(m.start(), Err(AirPlayError::AlreadyStreaming));
        d.with_sim(|s| {
            s.set_screen(true);
            s.play_video(SimDuration::from_secs(10));
        });
        let total = m.stop().unwrap();
        assert!(total > 0);
        assert!(!d.with_sim(|s| s.is_mirroring()));
    }

    #[test]
    fn streams_more_than_scrcpy_for_same_content() {
        // AirPlay's 4 Mbps default vs scrcpy's 1 Mbps cap.
        let (d, mut m) = mirror();
        m.start().unwrap();
        d.with_sim(|s| {
            s.set_screen(true);
            s.play_video(SimDuration::from_secs(10));
        });
        let airplay_bytes = m.stop().unwrap();
        let scrcpy_cap_bytes = (1_000_000.0 * 10.0 / 8.0) as u64;
        assert!(airplay_bytes > scrcpy_cap_bytes, "{airplay_bytes}");
    }

    #[test]
    fn mirroring_costs_ios_battery_too() {
        let (d, mut m) = mirror();
        d.with_sim(|s| s.set_screen(true));
        let t0 = d.with_sim(|s| s.now());
        d.with_sim(|s| s.play_video(SimDuration::from_secs(10)));
        let plain = d.with_sim(|s| s.current_trace().mean(t0, s.now()));
        m.start().unwrap();
        let t1 = d.with_sim(|s| s.now());
        d.with_sim(|s| s.play_video(SimDuration::from_secs(10)));
        let mirrored = d.with_sim(|s| s.current_trace().mean(t1, s.now()));
        assert!(mirrored > plain + 30.0, "{mirrored} vs {plain}");
    }
}
