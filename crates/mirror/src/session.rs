//! A device-mirroring session: scrcpy capture on the device, VNC/noVNC
//! fan-out on the controller, byte accounting for the §4.2 system-
//! performance numbers.

use batterylab_device::AndroidDevice;
use batterylab_faults::{site, FaultInjector, FaultKind};
use batterylab_sim::SimTime;
use batterylab_telemetry::{Counter, Histogram, Registry};

use crate::encoder::{EncoderConfig, EncoderError, ScrcpyCapture};
use crate::vnc::{ViewerId, VncError, VncServer, RFB_VERSION};

/// Errors from session orchestration.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionError {
    /// Encoder-side failure.
    Encoder(EncoderError),
    /// VNC-side failure.
    Vnc(VncError),
}

impl From<EncoderError> for SessionError {
    fn from(e: EncoderError) -> Self {
        SessionError::Encoder(e)
    }
}

impl From<VncError> for SessionError {
    fn from(e: VncError) -> Self {
        SessionError::Vnc(e)
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Encoder(e) => write!(f, "encoder: {e}"),
            SessionError::Vnc(e) => write!(f, "vnc: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Pre-resolved telemetry handles (`mirror.*` metrics).
struct MirrorTelemetry {
    registry: Registry,
    sessions_started: Counter,
    sessions_stopped: Counter,
    viewers_attached: Counter,
    auth_failures: Counter,
    encoded_bytes: Counter,
    upload_bytes: Counter,
    encoder_stalls: Counter,
    pump_bytes: Histogram,
}

impl MirrorTelemetry {
    fn bind(registry: &Registry) -> Self {
        MirrorTelemetry {
            sessions_started: registry.counter("mirror.sessions_started"),
            sessions_stopped: registry.counter("mirror.sessions_stopped"),
            viewers_attached: registry.counter("mirror.viewers_attached"),
            auth_failures: registry.counter("mirror.auth_failures"),
            encoded_bytes: registry.counter("mirror.encoded_bytes"),
            upload_bytes: registry.counter("mirror.upload_bytes"),
            encoder_stalls: registry.counter("mirror.encoder_stalls"),
            pump_bytes: registry.histogram("mirror.pump_bytes"),
            registry: registry.clone(),
        }
    }
}

/// A full mirroring session for one device.
pub struct MirrorSession {
    capture: ScrcpyCapture,
    vnc: VncServer,
    device: AndroidDevice,
    /// Wire bytes pushed to viewers (the vantage point's upload traffic).
    uploaded: u64,
    started_at: Option<SimTime>,
    telemetry: MirrorTelemetry,
    /// Platform fault plan: `EncoderStall` specs at `fault_site` stall
    /// the encoder for one pump interval; the session degrades its frame
    /// rate instead of dropping.
    faults: FaultInjector,
    fault_site: String,
}

/// Graceful-degradation floor: the session halves its frame rate on each
/// encoder stall but never below this (a barely-watchable mirror beats a
/// dropped session).
const MIN_DEGRADED_FPS: f64 = 7.5;

impl MirrorSession {
    /// Create a (stopped) session for `device`; viewers authenticate with
    /// `password`. Sessions are shared: experimenter + tester (§3).
    pub fn new(device: AndroidDevice, config: EncoderConfig, password: &str) -> Self {
        MirrorSession {
            capture: ScrcpyCapture::new(device.clone(), config),
            vnc: VncServer::new(password, true),
            device,
            uploaded: 0,
            started_at: None,
            telemetry: MirrorTelemetry::bind(&Registry::new()),
            faults: FaultInjector::disabled(),
            fault_site: site::MIRROR_ENCODER.to_string(),
        }
    }

    /// Consult `injector` for `EncoderStall` faults under `site` on every
    /// pump.
    pub fn set_faults(&mut self, injector: &FaultInjector, site: &str) {
        self.faults = injector.clone();
        self.fault_site = site.to_string();
    }

    /// Current capture frame rate (drops under injected encoder stalls).
    pub fn current_fps(&self) -> f64 {
        self.capture.config().fps
    }

    /// Rebind telemetry to a shared registry (`mirror.*` metrics).
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.set_telemetry(registry);
        self
    }

    /// In-place variant of [`Self::with_telemetry`].
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.telemetry = MirrorTelemetry::bind(registry);
    }

    /// Start capturing (arms the device-side encoder).
    pub fn start(&mut self) -> Result<(), SessionError> {
        self.capture.start()?;
        let now = self.device.with_sim(|s| s.now());
        self.started_at = Some(now);
        self.telemetry.sessions_started.inc();
        self.telemetry.registry.clock().advance_to(now.as_micros());
        self.telemetry
            .registry
            .event("mirror.session_started", self.device.serial());
        Ok(())
    }

    /// Stop capturing. Returns the raw encoded bytes produced.
    pub fn stop(&mut self) -> Result<u64, SessionError> {
        let total = self.capture.stop()?;
        self.started_at = None;
        self.telemetry.sessions_stopped.inc();
        self.telemetry
            .registry
            .event("mirror.session_stopped", self.device.serial());
        Ok(total)
    }

    /// Whether the session is live.
    pub fn is_active(&self) -> bool {
        self.started_at.is_some()
    }

    /// Connect a viewer (noVNC browser tab).
    pub fn attach_viewer(&mut self, password: &str) -> Result<ViewerId, SessionError> {
        match self.vnc.handshake(RFB_VERSION, password) {
            Ok(id) => {
                self.telemetry.viewers_attached.inc();
                Ok(id)
            }
            Err(e) => {
                if matches!(e, VncError::AuthFailed) {
                    self.telemetry.auth_failures.inc();
                }
                Err(e.into())
            }
        }
    }

    /// Disconnect a viewer.
    pub fn detach_viewer(&mut self, viewer: ViewerId) {
        self.vnc.disconnect(viewer);
    }

    /// Number of connected viewers.
    pub fn viewer_count(&self) -> usize {
        self.vnc.viewer_count()
    }

    /// Pump encoded bytes up to the device's current instant and push them
    /// to viewers. Call periodically while a workload runs. Returns the
    /// raw encoder bytes moved this pump.
    pub fn pump(&mut self) -> Result<u64, SessionError> {
        let now = self.device.with_sim(|s| s.now());
        if self
            .faults
            .check(&self.fault_site, FaultKind::EncoderStall, now)
        {
            // Degradation rule: a stall drops frame rate, never the
            // session. The stalled interval produces no bytes.
            self.capture.discard_until(now)?;
            self.telemetry.encoder_stalls.inc();
            let fps = self.capture.config().fps;
            if fps > MIN_DEGRADED_FPS {
                self.capture.throttle(0.5);
                self.telemetry.registry.clock().advance_to(now.as_micros());
                self.telemetry.registry.event(
                    "mirror.degraded",
                    format!(
                        "{} encoder stall: {:.1} fps -> {:.1} fps",
                        self.device.serial(),
                        fps,
                        self.capture.config().fps
                    ),
                );
            }
            return Ok(0);
        }
        let produced = self.capture.produce_until(now)?;
        self.telemetry.registry.clock().advance_to(now.as_micros());
        self.telemetry.encoded_bytes.add(produced);
        self.telemetry.pump_bytes.record(produced);
        if produced > 0 && self.vnc.viewer_count() > 0 {
            let before = self.vnc.bytes_sent();
            // One frame batch per pump; VNC framing + noVNC compression.
            let chunk = vec![0u8; (produced as usize).min(16 * 1024 * 1024)];
            self.vnc.send_frame(&chunk)?;
            let wire = self.vnc.bytes_sent() - before;
            self.uploaded += wire;
            self.telemetry.upload_bytes.add(wire);
        }
        Ok(produced)
    }

    /// Raw encoder bytes since session start.
    pub fn encoded_bytes(&self) -> u64 {
        self.capture.total_bytes()
    }

    /// Wire bytes uploaded to viewers (post noVNC compression).
    pub fn uploaded_bytes(&self) -> u64 {
        self.uploaded
    }

    /// Controller CPU load contribution of this session at frame-change
    /// level `change` (0–1): stream handling + VNC re-framing + websocket
    /// compression scale with how much screen content moves.
    pub fn controller_load(change: f64) -> f64 {
        (0.31 + 0.54 * change.clamp(0.0, 1.0)).min(1.0)
    }

    /// The mirrored device.
    pub fn device(&self) -> &AndroidDevice {
        &self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batterylab_device::boot_j7_duo;
    use batterylab_sim::{SimDuration, SimRng};

    fn session() -> (AndroidDevice, MirrorSession) {
        let d = boot_j7_duo(&SimRng::new(3), "mirror-dev");
        let s = MirrorSession::new(d.clone(), EncoderConfig::default(), "blab");
        (d, s)
    }

    #[test]
    fn full_session_lifecycle() {
        let (d, mut s) = session();
        s.start().unwrap();
        assert!(s.is_active());
        let viewer = s.attach_viewer("blab").unwrap();
        d.with_sim(|sim| {
            sim.set_screen(true);
            sim.play_video(SimDuration::from_secs(30));
        });
        let produced = s.pump().unwrap();
        assert!(produced > 0);
        assert!(s.uploaded_bytes() > 0);
        // noVNC compression: wire < raw + framing.
        assert!(s.uploaded_bytes() < produced + 1024);
        s.detach_viewer(viewer);
        let total = s.stop().unwrap();
        assert!(total >= produced);
        assert!(!s.is_active());
    }

    #[test]
    fn wrong_viewer_password() {
        let (_, mut s) = session();
        assert!(matches!(
            s.attach_viewer("nope"),
            Err(SessionError::Vnc(VncError::AuthFailed))
        ));
    }

    #[test]
    fn pump_without_viewers_still_encodes() {
        let (d, mut s) = session();
        s.start().unwrap();
        d.with_sim(|sim| {
            sim.set_screen(true);
            sim.play_video(SimDuration::from_secs(5));
        });
        let produced = s.pump().unwrap();
        assert!(produced > 0);
        assert_eq!(s.uploaded_bytes(), 0, "no viewer, nothing on the wire");
    }

    #[test]
    fn controller_load_scales_with_change() {
        let idle = MirrorSession::controller_load(0.05);
        let busy = MirrorSession::controller_load(0.8);
        assert!(busy > idle + 0.3);
        assert!(busy <= 1.0);
        assert!(MirrorSession::controller_load(5.0) <= 1.0);
    }

    #[test]
    fn telemetry_accounts_for_the_stream() {
        let registry = Registry::new();
        let d = boot_j7_duo(&SimRng::new(4), "mirror-tel");
        let mut s = MirrorSession::new(d.clone(), EncoderConfig::default(), "blab")
            .with_telemetry(&registry);
        s.start().unwrap();
        s.attach_viewer("blab").unwrap();
        assert!(s.attach_viewer("wrong").is_err());
        d.with_sim(|sim| {
            sim.set_screen(true);
            sim.play_video(SimDuration::from_secs(10));
        });
        s.pump().unwrap();
        s.stop().unwrap();
        let report = registry.snapshot();
        assert_eq!(report.counter("mirror.sessions_started"), 1);
        assert_eq!(report.counter("mirror.sessions_stopped"), 1);
        assert_eq!(report.counter("mirror.viewers_attached"), 1);
        assert_eq!(report.counter("mirror.auth_failures"), 1);
        assert!(report.counter("mirror.encoded_bytes") > 0);
        assert!(report.counter("mirror.upload_bytes") > 0);
        assert_eq!(report.counter("mirror.upload_bytes"), s.uploaded_bytes());
        assert!(report
            .events
            .iter()
            .any(|e| e.label == "mirror.session_started"));
    }

    #[test]
    fn encoder_stall_degrades_frame_rate_but_keeps_session() {
        use batterylab_faults::FaultPlan;
        let registry = Registry::new();
        let d = boot_j7_duo(&SimRng::new(9), "mirror-stall");
        let mut s = MirrorSession::new(d.clone(), EncoderConfig::default(), "blab")
            .with_telemetry(&registry);
        let plan = FaultPlan::new().next_n(site::MIRROR_ENCODER, FaultKind::EncoderStall, 2);
        s.set_faults(&FaultInjector::new(&plan, 5), site::MIRROR_ENCODER);
        s.start().unwrap();
        assert_eq!(s.current_fps(), 60.0);
        d.with_sim(|sim| {
            sim.set_screen(true);
            sim.play_video(SimDuration::from_secs(5));
        });
        // Two stalled pumps: no bytes, frame rate halves each time, but
        // the session never drops.
        assert_eq!(s.pump().unwrap(), 0);
        assert_eq!(s.current_fps(), 30.0);
        d.with_sim(|sim| sim.play_video(SimDuration::from_secs(5)));
        assert_eq!(s.pump().unwrap(), 0);
        assert_eq!(s.current_fps(), 15.0);
        assert!(s.is_active());
        // The plan is exhausted: the next pump produces at the reduced rate.
        d.with_sim(|sim| sim.play_video(SimDuration::from_secs(5)));
        let produced = s.pump().unwrap();
        assert!(produced > 0);
        let report = registry.snapshot();
        assert_eq!(report.counter("mirror.encoder_stalls"), 2);
        assert_eq!(
            report
                .events
                .iter()
                .filter(|e| e.label == "mirror.degraded")
                .count(),
            2
        );
    }

    #[test]
    fn experimenter_and_tester_can_share() {
        let (_, mut s) = session();
        s.start().unwrap();
        s.attach_viewer("blab").unwrap();
        s.attach_viewer("blab").unwrap();
        assert_eq!(s.viewer_count(), 2);
    }
}
