//! Energy integration: from current sample streams to the discharge (mAh)
//! and energy (mWh) numbers the paper reports.
//!
//! The Monsoon reports instantaneous current at a fixed sampling rate; the
//! battery discharge over a test is the time integral of that current.

use serde::{Deserialize, Serialize};

/// Integrate uniformly spaced current samples (mA at `rate_hz`) into mAh.
///
/// Uses a simple Riemann sum — at 5 kHz the difference from the trapezoid
/// rule is far below the Monsoon's own accuracy.
pub fn mah_from_ma_samples(samples_ma: &[f64], rate_hz: f64) -> f64 {
    assert!(rate_hz > 0.0, "sampling rate must be positive");
    let dt_hours = 1.0 / rate_hz / 3600.0;
    samples_ma.iter().sum::<f64>() * dt_hours
}

/// Integrate `(current mA, voltage V)` pairs at `rate_hz` into mWh.
pub fn mwh_from_samples(samples: &[(f64, f64)], rate_hz: f64) -> f64 {
    assert!(rate_hz > 0.0, "sampling rate must be positive");
    let dt_hours = 1.0 / rate_hz / 3600.0;
    samples.iter().map(|&(ma, v)| ma * v).sum::<f64>() * dt_hours
}

/// Streaming accumulator used by the Monsoon client on the controller: it
/// never stores the full 5 kHz trace, only running aggregates, mirroring
/// how long-running tests keep memory bounded on a Raspberry Pi.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EnergyAccumulator {
    samples: u64,
    sum_ma: f64,
    sum_mw: f64,
    min_ma: f64,
    max_ma: f64,
    rate_hz: f64,
}

impl EnergyAccumulator {
    /// New accumulator for a stream at `rate_hz`.
    pub fn new(rate_hz: f64) -> Self {
        assert!(rate_hz > 0.0, "sampling rate must be positive");
        EnergyAccumulator {
            samples: 0,
            sum_ma: 0.0,
            sum_mw: 0.0,
            min_ma: f64::INFINITY,
            max_ma: f64::NEG_INFINITY,
            rate_hz,
        }
    }

    /// Feed one sample.
    pub fn push(&mut self, current_ma: f64, voltage_v: f64) {
        self.samples += 1;
        self.sum_ma += current_ma;
        self.sum_mw += current_ma * voltage_v;
        self.min_ma = self.min_ma.min(current_ma);
        self.max_ma = self.max_ma.max(current_ma);
    }

    /// Feed a block of samples at one voltage.
    ///
    /// Bit-identical to calling [`Self::push`] once per sample in order
    /// (the accumulation runs in the same sequence, just through
    /// registers instead of one memory round-trip per sample) — the
    /// Monsoon's segment-batched path relies on that equivalence.
    pub fn push_slice(&mut self, currents_ma: &[f64], voltage_v: f64) {
        let mut sum_ma = self.sum_ma;
        let mut sum_mw = self.sum_mw;
        let mut min_ma = self.min_ma;
        let mut max_ma = self.max_ma;
        for &ma in currents_ma {
            sum_ma += ma;
            sum_mw += ma * voltage_v;
            min_ma = min_ma.min(ma);
            max_ma = max_ma.max(ma);
        }
        self.samples += currents_ma.len() as u64;
        self.sum_ma = sum_ma;
        self.sum_mw = sum_mw;
        self.min_ma = min_ma;
        self.max_ma = max_ma;
    }

    /// Number of samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Elapsed stream time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.samples as f64 / self.rate_hz
    }

    /// Mean current in mA (0 when empty).
    pub fn mean_ma(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_ma / self.samples as f64
        }
    }

    /// Total charge drawn, mAh.
    pub fn mah(&self) -> f64 {
        self.sum_ma / self.rate_hz / 3600.0
    }

    /// Total energy drawn, mWh.
    pub fn mwh(&self) -> f64 {
        self.sum_mw / self.rate_hz / 3600.0
    }

    /// Smallest current seen (0 when empty).
    pub fn min_ma(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.min_ma
        }
    }

    /// Largest current seen (0 when empty).
    pub fn max_ma(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.max_ma
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_current_integrates_exactly() {
        // 100 mA for one hour at 10 Hz → 100 mAh.
        let samples = vec![100.0; 36_000];
        let mah = mah_from_ma_samples(&samples, 10.0);
        assert!((mah - 100.0).abs() < 1e-9);
    }

    #[test]
    fn five_minute_video_example() {
        // 160 mA for 5 minutes ≈ 13.33 mAh — the Fig. 2 operating point.
        let samples = vec![160.0; 5 * 60 * 5000];
        let mah = mah_from_ma_samples(&samples, 5000.0);
        assert!((mah - 160.0 * 5.0 / 60.0).abs() < 1e-6);
    }

    #[test]
    fn mwh_uses_voltage() {
        let samples = vec![(100.0, 4.0); 3600];
        // 100 mA * 4 V = 400 mW for 1 h at 1 Hz → 400 mWh.
        assert!((mwh_from_samples(&samples, 1.0) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_matches_batch() {
        let rate = 100.0;
        let stream: Vec<f64> = (0..1000).map(|i| 100.0 + (i % 7) as f64).collect();
        let mut acc = EnergyAccumulator::new(rate);
        for &ma in &stream {
            acc.push(ma, 3.8);
        }
        assert_eq!(acc.samples(), 1000);
        assert!((acc.mah() - mah_from_ma_samples(&stream, rate)).abs() < 1e-12);
        let mean = stream.iter().sum::<f64>() / stream.len() as f64;
        assert!((acc.mean_ma() - mean).abs() < 1e-12);
        assert_eq!(acc.min_ma(), 100.0);
        assert_eq!(acc.max_ma(), 106.0);
        assert!((acc.elapsed_secs() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn push_slice_is_bit_identical_to_pushes() {
        let stream: Vec<f64> = (0..2000)
            .map(|i| 100.0 + ((i * 37) % 113) as f64 * 0.37)
            .collect();
        let mut one_by_one = EnergyAccumulator::new(500.0);
        let mut sliced = EnergyAccumulator::new(500.0);
        for &ma in &stream {
            one_by_one.push(ma, 4.0);
        }
        for block in stream.chunks(333) {
            sliced.push_slice(block, 4.0);
        }
        sliced.push_slice(&[], 4.0);
        assert_eq!(one_by_one.samples(), sliced.samples());
        assert_eq!(one_by_one.mah().to_bits(), sliced.mah().to_bits());
        assert_eq!(one_by_one.mwh().to_bits(), sliced.mwh().to_bits());
        assert_eq!(one_by_one.min_ma().to_bits(), sliced.min_ma().to_bits());
        assert_eq!(one_by_one.max_ma().to_bits(), sliced.max_ma().to_bits());
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = EnergyAccumulator::new(5000.0);
        assert_eq!(acc.mean_ma(), 0.0);
        assert_eq!(acc.mah(), 0.0);
        assert_eq!(acc.min_ma(), 0.0);
        assert_eq!(acc.max_ma(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = EnergyAccumulator::new(0.0);
    }
}
