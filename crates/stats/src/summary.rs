//! Summary statistics (mean ± standard deviation), the form the paper
//! reports in Figures 3 and 6 ("average battery discharge, standard
//! deviation as errorbars").

use serde::{Deserialize, Serialize};

/// Mean / standard deviation / extremes of a sample set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples aggregated.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected); 0 for n < 2.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample set. Panics on empty or non-finite input.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "Summary of empty sample set");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "Summary requires finite samples"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std_dev = if n < 2 {
            0.0
        } else {
            let ss: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum();
            (ss / (n - 1) as f64).sqrt()
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n,
            mean,
            std_dev,
            min,
            max,
        }
    }

    /// True when `other`'s mean lies within one standard deviation of this
    /// summary's mean (the paper's "variation stays between standard
    /// deviation bounds" criterion in §4.3).
    pub fn within_one_sigma_of(&self, other: &Summary) -> bool {
        (self.mean - other.mean).abs() <= self.std_dev
    }

    /// Relative difference of this mean vs a baseline mean.
    pub fn relative_to(&self, baseline: &Summary) -> f64 {
        if baseline.mean == 0.0 {
            return 0.0;
        }
        (self.mean - baseline.mean) / baseline.mean
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2} (n={})", self.mean, self.std_dev, self.n)
    }
}

/// Half-width of a normal-approximation 95 % confidence interval for the
/// mean of `summary` (1.96 · s/√n).
pub fn ci95_half_width(summary: &Summary) -> f64 {
    if summary.n == 0 {
        return 0.0;
    }
    1.96 * summary.std_dev / (summary.n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std-dev with Bessel correction: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_sample_zero_std() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    fn sigma_comparison() {
        let a = Summary::of(&[10.0, 12.0, 14.0]); // mean 12, std 2
        let b = Summary::of(&[13.0, 13.0, 13.0]); // mean 13
        assert!(a.within_one_sigma_of(&b));
        let c = Summary::of(&[20.0, 20.0, 20.0]);
        assert!(!a.within_one_sigma_of(&c));
    }

    #[test]
    fn relative_change() {
        let base = Summary::of(&[10.0, 10.0]);
        let plus = Summary::of(&[12.0, 12.0]);
        assert!((plus.relative_to(&base) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let few = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many_vec: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let many = Summary::of(&many_vec);
        assert!(ci95_half_width(&many) < ci95_half_width(&few));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn display_format() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(format!("{s}"), "2.00 ± 1.41 (n=2)");
    }
}
