//! # batterylab-stats
//!
//! Statistics utilities shared by the BatteryLab measurement path and the
//! evaluation harness: empirical CDFs (Figs. 2, 4 and 5 of the paper are
//! CDFs), summary statistics with standard deviations (the error bars of
//! Figs. 3 and 6), and energy integration from current samples to mAh
//! (the Y axis of Figs. 3 and 6).

#![warn(missing_docs)]

mod cdf;
mod energy;
mod summary;

pub use cdf::Cdf;
pub use energy::{mah_from_ma_samples, mwh_from_samples, EnergyAccumulator};
pub use summary::{ci95_half_width, Summary};
