//! Empirical cumulative distribution functions.

use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
///
/// Non-finite samples are rejected at construction; quantiles use linear
/// interpolation between order statistics (type-7, the numpy default), so
/// medians of even-length samples behave as users expect.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples. Panics if any sample is NaN/±inf or if the
    /// slice is empty — an empty CDF has no meaningful quantiles and
    /// constructing one is always a harness bug.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "Cdf from empty sample set");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "Cdf requires finite samples"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Empirical CDF value `P(X <= x)`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly above `x` — e.g. the paper's
    /// "in 10% of the measurements the load is over 95%".
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// Quantile `q ∈ [0, 1]` with linear interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = pos - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// The median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Evenly spaced `(x, P(X <= x))` points for plotting, always including
    /// the extremes. `points >= 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two curve points");
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// Sorted access to the underlying samples.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        let odd = Cdf::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(odd.median(), 2.0);
        let even = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(even.median(), 2.5);
    }

    #[test]
    fn quantile_extremes() {
        let c = Cdf::from_samples(&[5.0, 1.0, 9.0]);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 9.0);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 9.0);
    }

    #[test]
    fn fraction_at_or_below_counts_ties() {
        let c = Cdf::from_samples(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(c.fraction_at_or_below(2.0), 0.75);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(3.0), 1.0);
        assert!((c.fraction_above(2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotonic() {
        let samples: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let c = Cdf::from_samples(&samples);
        let curve = c.curve(21);
        assert_eq!(curve.len(), 21);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve[0].1, 0.0);
        assert_eq!(curve[20].1, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = Cdf::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Cdf::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn singleton() {
        let c = Cdf::from_samples(&[4.2]);
        assert_eq!(c.median(), 4.2);
        assert_eq!(c.quantile(0.25), 4.2);
    }
}
