//! The device-side ADB daemon (`adbd`).
//!
//! A state machine fed by transport bytes: it handshakes (`CNXN`),
//! authenticates (`AUTH` token/signature/public-key), then serves one-shot
//! service streams (`OPEN` → `OKAY` → `WRTE`… → `CLSE`). Output larger
//! than the negotiated payload limit is split across multiple `WRTE`
//! frames, like the real daemon.

use bytes::{Bytes, BytesMut};

use crate::auth::{PublicKey, TOKEN_LEN};
use crate::services::DeviceServices;
use crate::transport::{TransportEnd, TransportError};
use crate::wire::{
    Packet, WireError, ADB_VERSION, AUTH_RSAPUBLICKEY, AUTH_SIGNATURE, AUTH_TOKEN, A_AUTH, A_CLSE,
    A_CNXN, A_OKAY, A_OPEN, A_WRTE, MAX_PAYLOAD,
};

/// Daemon faults (wire corruption or transport loss).
#[derive(Clone, Debug, PartialEq)]
pub enum DaemonError {
    /// Framing/validation failure; the daemon drops the connection.
    Wire(WireError),
    /// Transport failure.
    Transport(TransportError),
}

impl From<WireError> for DaemonError {
    fn from(e: WireError) -> Self {
        DaemonError::Wire(e)
    }
}

impl From<TransportError> for DaemonError {
    fn from(e: TransportError) -> Self {
        DaemonError::Transport(e)
    }
}

#[derive(Debug, PartialEq)]
enum State {
    /// Waiting for the host's CNXN.
    Offline,
    /// Challenge sent; waiting for a signature or a public key.
    Authenticating {
        token: [u8; TOKEN_LEN],
        attempts: u8,
    },
    /// Session established.
    Online,
}

/// The `adbd` instance of one device.
pub struct AdbDaemon<S: DeviceServices> {
    services: S,
    state: State,
    rx_buf: BytesMut,
    next_local_id: u32,
    token_counter: u64,
    known_keys: Vec<PublicKey>,
    /// Count of sessions established (diagnostics).
    sessions: u32,
}

impl<S: DeviceServices> AdbDaemon<S> {
    /// A daemon in the offline state.
    pub fn new(services: S) -> Self {
        AdbDaemon {
            services,
            state: State::Offline,
            rx_buf: BytesMut::new(),
            next_local_id: 1,
            token_counter: 0,
            known_keys: Vec::new(),
            sessions: 0,
        }
    }

    /// Access the device behind the daemon.
    pub fn services(&self) -> &S {
        &self.services
    }

    /// Mutable access (tests & enrolment flows).
    pub fn services_mut(&mut self) -> &mut S {
        &mut self.services
    }

    /// Whether a session is established.
    pub fn is_online(&self) -> bool {
        self.state == State::Online
    }

    /// Sessions established over the daemon's lifetime.
    pub fn sessions(&self) -> u32 {
        self.sessions
    }

    /// Drop to the offline state (USB replug, `adb tcpip` restart).
    pub fn reset(&mut self) {
        self.state = State::Offline;
        self.rx_buf.clear();
    }

    fn fresh_token(&mut self) -> [u8; TOKEN_LEN] {
        // Deterministic but unique per challenge.
        self.token_counter += 1;
        let mut token = [0u8; TOKEN_LEN];
        let c = self.token_counter;
        for (i, b) in token.iter_mut().enumerate() {
            *b = (c.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64 * 31) >> (i % 8)) as u8;
        }
        token
    }

    /// Pump: drain the transport, process every complete packet, send
    /// replies. Call whenever the host may have written.
    pub fn poll(&mut self, transport: &TransportEnd) -> Result<(), DaemonError> {
        let incoming = transport.recv();
        self.rx_buf.extend_from_slice(&incoming);
        while let Some(packet) = Packet::decode(&mut self.rx_buf)? {
            self.handle(packet, transport)?;
        }
        Ok(())
    }

    fn send(&self, transport: &TransportEnd, p: Packet) -> Result<(), DaemonError> {
        transport.send(&p.encode())?;
        Ok(())
    }

    fn go_online(&mut self, transport: &TransportEnd) -> Result<(), DaemonError> {
        self.state = State::Online;
        self.sessions += 1;
        let banner = self.services.identity();
        self.send(
            transport,
            Packet::new(A_CNXN, ADB_VERSION, MAX_PAYLOAD, banner.into_bytes()),
        )
    }

    fn challenge(&mut self, transport: &TransportEnd, attempts: u8) -> Result<(), DaemonError> {
        let token = self.fresh_token();
        self.state = State::Authenticating { token, attempts };
        self.send(
            transport,
            Packet::new(A_AUTH, AUTH_TOKEN, 0, token.to_vec()),
        )
    }

    fn handle(&mut self, packet: Packet, transport: &TransportEnd) -> Result<(), DaemonError> {
        match packet.command {
            A_CNXN => {
                if self.services.auth_required() {
                    self.challenge(transport, 0)
                } else {
                    self.go_online(transport)
                }
            }
            A_AUTH => self.handle_auth(packet, transport),
            A_OPEN if self.state == State::Online => self.handle_open(packet, transport),
            A_OPEN => {
                // Service request before auth: close it immediately.
                self.send(transport, Packet::new(A_CLSE, 0, packet.arg0, Bytes::new()))
            }
            // OKAY/CLSE acks for one-shot streams need no bookkeeping; SYNC
            // and WRTE to unknown streams are ignored like the real daemon.
            _ => Ok(()),
        }
    }

    fn handle_auth(&mut self, packet: Packet, transport: &TransportEnd) -> Result<(), DaemonError> {
        let State::Authenticating { token, attempts } = self.state else {
            return Ok(()); // stray AUTH
        };
        match packet.arg0 {
            AUTH_SIGNATURE => {
                // Accept if any trusted key verifies. We don't store full
                // public keys per fingerprint here; the device services
                // own the trust store, so we ask it to verify by
                // re-deriving candidate keys. For the simulation the
                // signature embeds enough to verify against the trust
                // store via PublicKey blobs carried in RSAPUBLICKEY; a
                // signature-only login therefore succeeds only when the
                // host previously registered its key.
                if self.verify_signature(&token, &packet.payload).is_some() {
                    self.go_online(transport)
                } else if attempts < 2 {
                    // Re-challenge; after the retries the host falls back
                    // to RSAPUBLICKEY.
                    self.challenge(transport, attempts + 1)
                } else {
                    self.challenge(transport, attempts)
                }
            }
            AUTH_RSAPUBLICKEY => {
                let Some(pk) = PublicKey::parse(&packet.payload) else {
                    return self.challenge(transport, attempts);
                };
                if self.services.is_key_trusted(&pk.fingerprint)
                    || self.services.offer_key(&pk.fingerprint)
                {
                    // Real adbd asks the host to sign again; we shortcut
                    // to online after acceptance, keeping one round trip.
                    self.remember_key(pk);
                    self.go_online(transport)
                } else {
                    // User declined: stay authenticating (host will give up).
                    self.challenge(transport, attempts)
                }
            }
            _ => Ok(()),
        }
    }

    fn handle_open(&mut self, packet: Packet, transport: &TransportEnd) -> Result<(), DaemonError> {
        let remote_id = packet.arg0;
        let local_id = self.next_local_id;
        self.next_local_id += 1;
        let service = packet.text();
        match self.services.exec(&service) {
            Ok(output) => {
                self.send(
                    transport,
                    Packet::new(A_OKAY, local_id, remote_id, Bytes::new()),
                )?;
                for chunk in output.chunks((MAX_PAYLOAD as usize).max(1)) {
                    self.send(
                        transport,
                        Packet::new(A_WRTE, local_id, remote_id, chunk.to_vec()),
                    )?;
                }
                self.send(
                    transport,
                    Packet::new(A_CLSE, local_id, remote_id, Bytes::new()),
                )
            }
            Err(_) => {
                // Service refused: CLSE without OKAY, as the real daemon.
                self.send(transport, Packet::new(A_CLSE, 0, remote_id, Bytes::new()))
            }
        }
    }

    // -- key verification ---------------------------------------------------

    fn verify_signature(&self, token: &[u8], signature: &[u8]) -> Option<()> {
        for pk in self.known_keys.iter() {
            if pk.verify(token, signature) {
                return Some(());
            }
        }
        None
    }
}

// Known-key storage: adbd keeps the parsed public keys it accepted this
// boot; the durable trust store (fingerprints) lives in DeviceServices.
impl<S: DeviceServices> AdbDaemon<S> {
    fn remember_key(&mut self, pk: PublicKey) {
        if !self.known_keys.iter().any(|k| k == &pk) {
            self.known_keys.push(pk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::MockServices;
    use crate::transport::{duplex, TransportKind};

    fn decode_all(raw: Vec<u8>) -> Vec<Packet> {
        let mut buf = BytesMut::from(&raw[..]);
        let mut out = Vec::new();
        while let Some(p) = Packet::decode(&mut buf).unwrap() {
            out.push(p);
        }
        out
    }

    #[test]
    fn no_auth_device_connects_directly() {
        let (host, dev) = duplex(TransportKind::Usb);
        let services = MockServices {
            require_auth: false,
            ..Default::default()
        };
        let mut daemon = AdbDaemon::new(services);
        host.send(&Packet::new(A_CNXN, ADB_VERSION, MAX_PAYLOAD, &b"host::"[..]).encode())
            .unwrap();
        daemon.poll(&dev).unwrap();
        let replies = decode_all(host.recv());
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].command, A_CNXN);
        assert!(replies[0].text().starts_with("device::"));
        assert!(daemon.is_online());
    }

    #[test]
    fn auth_challenge_issued() {
        let (host, dev) = duplex(TransportKind::Usb);
        let mut daemon = AdbDaemon::new(MockServices::default());
        host.send(&Packet::new(A_CNXN, ADB_VERSION, MAX_PAYLOAD, &b"host::"[..]).encode())
            .unwrap();
        daemon.poll(&dev).unwrap();
        let replies = decode_all(host.recv());
        assert_eq!(replies[0].command, A_AUTH);
        assert_eq!(replies[0].arg0, AUTH_TOKEN);
        assert_eq!(replies[0].payload.len(), TOKEN_LEN);
        assert!(!daemon.is_online());
    }

    #[test]
    fn open_before_auth_is_closed() {
        let (host, dev) = duplex(TransportKind::Usb);
        let mut daemon = AdbDaemon::new(MockServices::default());
        host.send(&Packet::new(A_OPEN, 5, 0, &b"shell:id\0"[..]).encode())
            .unwrap();
        daemon.poll(&dev).unwrap();
        let replies = decode_all(host.recv());
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].command, A_CLSE);
        assert_eq!(replies[0].arg1, 5);
    }

    #[test]
    fn service_executes_after_no_auth_connect() {
        let (host, dev) = duplex(TransportKind::WiFi);
        let services = MockServices {
            require_auth: false,
            ..Default::default()
        };
        let mut daemon = AdbDaemon::new(services);
        host.send(&Packet::new(A_CNXN, ADB_VERSION, MAX_PAYLOAD, &b"host::"[..]).encode())
            .unwrap();
        daemon.poll(&dev).unwrap();
        host.recv();
        host.send(&Packet::new(A_OPEN, 11, 0, &b"shell:echo hi\0"[..]).encode())
            .unwrap();
        daemon.poll(&dev).unwrap();
        let replies = decode_all(host.recv());
        assert_eq!(replies[0].command, A_OKAY);
        assert_eq!(replies[1].command, A_WRTE);
        assert_eq!(replies[1].text(), "hi\n");
        assert_eq!(replies[2].command, A_CLSE);
        assert_eq!(daemon.services().executed, vec!["shell:echo hi"]);
    }

    #[test]
    fn failed_service_closes_without_okay() {
        let (host, dev) = duplex(TransportKind::WiFi);
        let services = MockServices {
            require_auth: false,
            ..Default::default()
        };
        let mut daemon = AdbDaemon::new(services);
        host.send(&Packet::new(A_CNXN, ADB_VERSION, MAX_PAYLOAD, &b"host::"[..]).encode())
            .unwrap();
        daemon.poll(&dev).unwrap();
        host.recv();
        host.send(&Packet::new(A_OPEN, 3, 0, &b"shell:fail\0"[..]).encode())
            .unwrap();
        daemon.poll(&dev).unwrap();
        let replies = decode_all(host.recv());
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].command, A_CLSE);
    }

    #[test]
    fn reset_requires_new_handshake() {
        let (host, dev) = duplex(TransportKind::Usb);
        let services = MockServices {
            require_auth: false,
            ..Default::default()
        };
        let mut daemon = AdbDaemon::new(services);
        host.send(&Packet::new(A_CNXN, ADB_VERSION, MAX_PAYLOAD, &b"host::"[..]).encode())
            .unwrap();
        daemon.poll(&dev).unwrap();
        assert!(daemon.is_online());
        daemon.reset();
        assert!(!daemon.is_online());
        host.recv();
        host.send(&Packet::new(A_OPEN, 9, 0, &b"shell:id\0"[..]).encode())
            .unwrap();
        daemon.poll(&dev).unwrap();
        let replies = decode_all(host.recv());
        assert_eq!(replies[0].command, A_CLSE, "must re-handshake after reset");
    }
}
