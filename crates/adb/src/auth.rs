//! ADB authentication.
//!
//! Real adb uses RSA keypairs: the device challenges with a 20-byte token,
//! the host answers with a signature, and unknown keys require the user to
//! tap "allow" on the device. We keep the exact message flow
//! (`AUTH TOKEN` → `AUTH SIGNATURE` → fallback `AUTH RSAPUBLICKEY`) over a
//! keyed-hash scheme instead of RSA — the protocol behaviour, trust store
//! and failure modes are what BatteryLab depends on, not the asymmetric
//! math.

use serde::{Deserialize, Serialize};

/// Length of the device's challenge token, bytes (as in real adb).
pub const TOKEN_LEN: usize = 20;

/// A host identity key (`~/.android/adbkey` equivalent).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdbKey {
    /// Public fingerprint, shown in the device's "allow USB debugging?"
    /// dialog and stored in its trust store.
    pub fingerprint: String,
    secret: u64,
}

impl AdbKey {
    /// Deterministically derive a key for a named host.
    pub fn generate(host_name: &str, seed: u64) -> AdbKey {
        let secret = mix(seed ^ hash_str(host_name));
        AdbKey {
            fingerprint: format!("{:016x}:{}", mix(secret), host_name),
            secret,
        }
    }

    /// Sign a challenge token.
    pub fn sign(&self, token: &[u8]) -> Vec<u8> {
        keyed_hash(self.secret, token).to_le_bytes().to_vec()
    }

    /// Public part, sent in `AUTH RSAPUBLICKEY`: fingerprint plus the
    /// verification tag the device stores (hex, so the blob stays ASCII
    /// like real adb's base64 key lines).
    pub fn public_blob(&self) -> Vec<u8> {
        format!("{} {:016x}", self.fingerprint, mix(self.secret)).into_bytes()
    }
}

/// Device-side verification material parsed from a public blob.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    /// The key's fingerprint.
    pub fingerprint: String,
    tag: u64,
}

impl PublicKey {
    /// Parse a blob from `AUTH RSAPUBLICKEY`.
    pub fn parse(blob: &[u8]) -> Option<PublicKey> {
        let text = std::str::from_utf8(blob).ok()?;
        let (fp, tag_hex) = text.rsplit_once(' ')?;
        if fp.is_empty() || tag_hex.len() != 16 {
            return None;
        }
        Some(PublicKey {
            fingerprint: fp.to_string(),
            tag: u64::from_str_radix(tag_hex, 16).ok()?,
        })
    }

    /// Verify a signature over `token` claimed by this key.
    pub fn verify(&self, token: &[u8], signature: &[u8]) -> bool {
        let sig_bytes: Result<[u8; 8], _> = signature.try_into();
        let Ok(sig) = sig_bytes else { return false };
        // The tag is mix(secret); a valid signer proves knowledge of a
        // secret whose keyed hash matches under that tag.
        u64::from_le_bytes(sig) == keyed_hash_tagged(self.tag, token)
    }
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn keyed_hash(secret: u64, data: &[u8]) -> u64 {
    keyed_hash_tagged(mix(secret), data)
}

fn keyed_hash_tagged(tag: u64, data: &[u8]) -> u64 {
    data.iter()
        .fold(tag ^ 0x1234_5678_9abc_def0, |h, &b| mix(h ^ b as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let key = AdbKey::generate("access-server", 42);
        let public = PublicKey::parse(&key.public_blob()).unwrap();
        let token = [7u8; TOKEN_LEN];
        let sig = key.sign(&token);
        assert!(public.verify(&token, &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let key = AdbKey::generate("access-server", 42);
        let imposter = AdbKey::generate("access-server", 43);
        let public = PublicKey::parse(&key.public_blob()).unwrap();
        let token = [7u8; TOKEN_LEN];
        assert!(!public.verify(&token, &imposter.sign(&token)));
    }

    #[test]
    fn wrong_token_rejected() {
        let key = AdbKey::generate("h", 1);
        let public = PublicKey::parse(&key.public_blob()).unwrap();
        let sig = key.sign(&[1u8; TOKEN_LEN]);
        assert!(!public.verify(&[2u8; TOKEN_LEN], &sig));
    }

    #[test]
    fn deterministic_generation() {
        let a = AdbKey::generate("h", 9);
        let b = AdbKey::generate("h", 9);
        assert_eq!(a, b);
        let c = AdbKey::generate("other", 9);
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn garbage_blob_rejected() {
        assert!(PublicKey::parse(b"").is_none());
        assert!(PublicKey::parse(b"no-space-here").is_none());
        assert!(PublicKey::parse(b"fp short").is_none());
    }

    #[test]
    fn malformed_signature_rejected() {
        let key = AdbKey::generate("h", 1);
        let public = PublicKey::parse(&key.public_blob()).unwrap();
        assert!(!public.verify(&[0u8; TOKEN_LEN], b"short"));
        assert!(!public.verify(&[0u8; TOKEN_LEN], &[0u8; 16]));
    }
}
