//! The host side of ADB: what `adb` the command-line tool (and the
//! BatteryLab controller) speaks.
//!
//! [`AdbHostClient`] is a sans-IO state machine over a [`TransportEnd`]:
//! callers write requests, pump the peer daemon, then call
//! [`AdbHostClient::process`] to advance. [`AdbLink`] packages a client,
//! a daemon and the duplex pipe into the synchronous API the controller
//! uses (`connect`, `execute`, `shell`, …).

use batterylab_faults::{FaultInjector, FaultKind};
use batterylab_sim::SimTime;
use batterylab_telemetry::{Counter, Histogram, Registry};
use bytes::{Bytes, BytesMut};

use crate::auth::AdbKey;
use crate::daemon::{AdbDaemon, DaemonError};
use crate::services::DeviceServices;
use crate::transport::{duplex_with_profile, TransportEnd, TransportError, TransportKind};
use crate::wire::{
    Packet, WireError, ADB_VERSION, AUTH_RSAPUBLICKEY, AUTH_SIGNATURE, AUTH_TOKEN, A_AUTH, A_CLSE,
    A_CNXN, A_OKAY, A_OPEN, A_WRTE, MAX_PAYLOAD,
};
use batterylab_net::LinkProfile;

/// Host-side failures.
#[derive(Clone, Debug, PartialEq)]
pub enum HostError {
    /// Transport failure.
    Transport(TransportError),
    /// Framing corruption.
    Wire(WireError),
    /// The device refused our key (user declined the dialog).
    AuthRejected,
    /// The device closed the stream without accepting the service.
    ServiceRefused(String),
    /// Handshake/stream did not complete within the pump budget.
    Stalled(&'static str),
    /// Operation requires an established session.
    NotConnected,
}

impl From<TransportError> for HostError {
    fn from(e: TransportError) -> Self {
        HostError::Transport(e)
    }
}

impl From<WireError> for HostError {
    fn from(e: WireError) -> Self {
        HostError::Wire(e)
    }
}

impl From<DaemonError> for HostError {
    fn from(e: DaemonError) -> Self {
        match e {
            DaemonError::Wire(w) => HostError::Wire(w),
            DaemonError::Transport(t) => HostError::Transport(t),
        }
    }
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::Transport(e) => write!(f, "transport: {e}"),
            HostError::Wire(e) => write!(f, "wire: {e}"),
            HostError::AuthRejected => write!(f, "device rejected our key"),
            HostError::ServiceRefused(s) => write!(f, "service refused: {s}"),
            HostError::Stalled(what) => write!(f, "protocol stalled during {what}"),
            HostError::NotConnected => write!(f, "no adb session"),
        }
    }
}

impl std::error::Error for HostError {}

#[derive(Debug, PartialEq)]
enum AuthPhase {
    /// Haven't answered a challenge yet.
    Fresh,
    /// Sent a signature for the last token.
    SentSignature,
    /// Fell back to sending our public key.
    SentPublicKey,
}

#[derive(Debug)]
enum StreamPhase {
    AwaitingOkay,
    Open { got: Vec<u8> },
}

/// Pre-resolved telemetry handles for the framing layer (`adb.*`).
/// Bound once at construction; every frame costs two relaxed atomic
/// RMWs per direction.
struct AdbTelemetry {
    frames_tx: Counter,
    frames_rx: Counter,
    bytes_tx: Counter,
    bytes_rx: Counter,
    frame_payload_bytes: Histogram,
}

impl AdbTelemetry {
    fn bind(registry: &Registry) -> Self {
        AdbTelemetry {
            frames_tx: registry.counter("adb.frames_tx"),
            frames_rx: registry.counter("adb.frames_rx"),
            bytes_tx: registry.counter("adb.bytes_tx"),
            bytes_rx: registry.counter("adb.bytes_rx"),
            frame_payload_bytes: registry.histogram("adb.frame_payload_bytes"),
        }
    }
}

/// Sans-IO host state machine.
pub struct AdbHostClient {
    transport: TransportEnd,
    key: AdbKey,
    rx: BytesMut,
    banner: Option<String>,
    auth: AuthPhase,
    stream: Option<(u32, String, StreamPhase)>,
    next_stream_id: u32,
    telemetry: AdbTelemetry,
}

impl AdbHostClient {
    /// Client over `transport` authenticating with `key`.
    pub fn new(transport: TransportEnd, key: AdbKey) -> Self {
        AdbHostClient {
            transport,
            key,
            rx: BytesMut::new(),
            banner: None,
            auth: AuthPhase::Fresh,
            stream: None,
            next_stream_id: 100,
            telemetry: AdbTelemetry::bind(&Registry::new()),
        }
    }

    /// Rebind telemetry to a shared registry (`adb.*` metrics).
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.telemetry = AdbTelemetry::bind(registry);
    }

    /// Encode and send one frame, counting it.
    fn send_packet(&mut self, packet: Packet) -> Result<(), HostError> {
        let encoded = packet.encode();
        self.telemetry.frames_tx.inc();
        self.telemetry.bytes_tx.add(encoded.len() as u64);
        self.transport.send(&encoded)?;
        Ok(())
    }

    /// The device banner once connected.
    pub fn banner(&self) -> Option<&str> {
        self.banner.as_deref()
    }

    /// Whether a session is established.
    pub fn is_online(&self) -> bool {
        self.banner.is_some()
    }

    /// The transport in use.
    pub fn transport(&self) -> &TransportEnd {
        &self.transport
    }

    /// Kick off the handshake.
    pub fn start_connect(&mut self) -> Result<(), HostError> {
        self.banner = None;
        self.auth = AuthPhase::Fresh;
        self.send_packet(Packet::new(
            A_CNXN,
            ADB_VERSION,
            MAX_PAYLOAD,
            &b"host::batterylab\0"[..],
        ))?;
        Ok(())
    }

    /// Open a one-shot service stream.
    pub fn start_service(&mut self, service: &str) -> Result<(), HostError> {
        if !self.is_online() {
            return Err(HostError::NotConnected);
        }
        let id = self.next_stream_id;
        self.next_stream_id += 1;
        let mut payload = service.as_bytes().to_vec();
        payload.push(0);
        self.send_packet(Packet::new(A_OPEN, id, 0, payload))?;
        self.stream = Some((id, service.to_string(), StreamPhase::AwaitingOkay));
        Ok(())
    }

    /// Drain the transport and advance the state machine. Returns the
    /// completed service output when a stream finished this call.
    pub fn process(&mut self) -> Result<Option<Vec<u8>>, HostError> {
        let bytes = self.transport.recv();
        self.telemetry.bytes_rx.add(bytes.len() as u64);
        self.rx.extend_from_slice(&bytes);
        let mut finished = None;
        while let Some(packet) = Packet::decode(&mut self.rx)? {
            self.telemetry.frames_rx.inc();
            self.telemetry
                .frame_payload_bytes
                .record(packet.payload.len() as u64);
            if let Some(out) = self.handle(packet)? {
                finished = Some(out);
            }
        }
        Ok(finished)
    }

    fn handle(&mut self, packet: Packet) -> Result<Option<Vec<u8>>, HostError> {
        match packet.command {
            A_CNXN => {
                self.banner = Some(packet.text());
                Ok(None)
            }
            A_AUTH if packet.arg0 == AUTH_TOKEN => {
                match self.auth {
                    AuthPhase::Fresh => {
                        let sig = self.key.sign(&packet.payload);
                        self.send_packet(Packet::new(A_AUTH, AUTH_SIGNATURE, 0, sig))?;
                        self.auth = AuthPhase::SentSignature;
                    }
                    AuthPhase::SentSignature => {
                        // Signature bounced: offer our public key.
                        let blob = self.key.public_blob();
                        self.send_packet(Packet::new(A_AUTH, AUTH_RSAPUBLICKEY, 0, blob))?;
                        self.auth = AuthPhase::SentPublicKey;
                    }
                    AuthPhase::SentPublicKey => {
                        // Key offered and still challenged: declined.
                        return Err(HostError::AuthRejected);
                    }
                }
                Ok(None)
            }
            A_OKAY => {
                if let Some((id, _, phase)) = &mut self.stream {
                    if packet.arg1 == *id {
                        if let StreamPhase::AwaitingOkay = phase {
                            *phase = StreamPhase::Open { got: Vec::new() };
                        }
                    }
                }
                Ok(None)
            }
            A_WRTE => {
                let mut ack = None;
                if let Some((id, _, phase)) = &mut self.stream {
                    if packet.arg1 == *id {
                        if let StreamPhase::Open { got } = phase {
                            got.extend_from_slice(&packet.payload);
                            ack = Some(*id);
                        }
                    }
                }
                if let Some(id) = ack {
                    // Ack the write so the daemon can keep streaming.
                    self.send_packet(Packet::new(A_OKAY, id, packet.arg0, Bytes::new()))?;
                }
                Ok(None)
            }
            A_CLSE => {
                let Some((id, service, phase)) = self.stream.take() else {
                    return Ok(None);
                };
                if packet.arg1 != id {
                    self.stream = Some((id, service, phase));
                    return Ok(None);
                }
                match phase {
                    StreamPhase::Open { got } => Ok(Some(got)),
                    StreamPhase::AwaitingOkay => Err(HostError::ServiceRefused(service)),
                }
            }
            _ => Ok(None),
        }
    }
}

/// A synchronous host↔daemon pairing over an in-memory duplex — the shape
/// the controller uses: one `AdbLink` per (device, transport medium).
pub struct AdbLink<S: DeviceServices> {
    host: AdbHostClient,
    daemon: AdbDaemon<S>,
    daemon_end: TransportEnd,
    kind: TransportKind,
    connects: Counter,
    reconnects: Counter,
    services: Counter,
    /// Platform fault plan: `TransportReset` specs at `fault_site` sever
    /// the transport before a service runs.
    faults: FaultInjector,
    fault_site: String,
    /// Sim time the next fault check is evaluated at; the controller
    /// syncs this from the device clock (the link itself has no clock).
    fault_clock: SimTime,
}

/// Pump budget for one logical operation. Handshake + auth + fallback is
/// ≤ 4 round trips; anything above this is a protocol bug.
const PUMP_BUDGET: usize = 16;

impl<S: DeviceServices> AdbLink<S> {
    /// Wire a daemon for `services` to a fresh host client over `kind`.
    pub fn new(services: S, kind: TransportKind, key: AdbKey) -> Self {
        Self::with_profile(services, kind, kind.default_profile(), key)
    }

    /// As [`Self::new`] with an explicit link profile.
    pub fn with_profile(
        services: S,
        kind: TransportKind,
        profile: LinkProfile,
        key: AdbKey,
    ) -> Self {
        let (host_end, daemon_end) = duplex_with_profile(kind, profile);
        AdbLink {
            host: AdbHostClient::new(host_end, key),
            daemon: AdbDaemon::new(services),
            daemon_end,
            kind,
            connects: Counter::default(),
            reconnects: Counter::default(),
            services: Counter::default(),
            faults: FaultInjector::disabled(),
            fault_site: batterylab_faults::site::ADB_TRANSPORT.to_string(),
            fault_clock: SimTime::ZERO,
        }
    }

    /// Consult `injector` for `TransportReset` faults under `site` on
    /// every service execution.
    pub fn set_faults(&mut self, injector: &FaultInjector, site: &str) {
        self.faults = injector.clone();
        self.fault_site = site.to_string();
    }

    /// Advance the sim time fault checks are evaluated at (windowed
    /// transport faults key on this).
    pub fn sync_fault_clock(&mut self, now: SimTime) {
        self.fault_clock = self.fault_clock.max(now);
    }

    /// Rebind this link (framing layer included) to a shared registry.
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.set_telemetry(registry);
        self
    }

    /// In-place variant of [`Self::with_telemetry`].
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.host.set_telemetry(registry);
        self.connects = registry.counter("adb.connects");
        self.reconnects = registry.counter("adb.reconnects");
        self.services = registry.counter("adb.services");
    }

    /// The transport medium.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// The device services behind the daemon.
    pub fn services(&self) -> &S {
        self.daemon.services()
    }

    /// Mutable device services access.
    pub fn services_mut(&mut self) -> &mut S {
        self.daemon.services_mut()
    }

    /// Host-side client (advanced use / diagnostics).
    pub fn host(&self) -> &AdbHostClient {
        &self.host
    }

    /// Bytes moved in both directions (for radio-energy accounting).
    pub fn bytes_on_wire(&self) -> u64 {
        self.host.transport.bytes_sent() + self.host.transport.bytes_received_total()
    }

    /// Sever the transport (USB port power-off, WiFi loss).
    pub fn disconnect_transport(&self) {
        self.host.transport.disconnect();
    }

    /// Restore the transport; a new `connect` is required.
    pub fn reconnect_transport(&mut self) {
        self.host.transport.reconnect();
        self.daemon.reset();
        self.host.banner = None;
        self.reconnects.inc();
    }

    /// Establish a session (handshake + auth, with pubkey fallback).
    pub fn connect(&mut self) -> Result<String, HostError> {
        self.host.start_connect()?;
        for _ in 0..PUMP_BUDGET {
            self.daemon.poll(&self.daemon_end)?;
            self.host.process()?;
            if let Some(banner) = self.host.banner() {
                self.connects.inc();
                return Ok(banner.to_string());
            }
        }
        Err(HostError::Stalled("connect"))
    }

    /// Run a one-shot service and return its output.
    pub fn execute(&mut self, service: &str) -> Result<Vec<u8>, HostError> {
        if self.faults.check(
            &self.fault_site,
            FaultKind::TransportReset,
            self.fault_clock,
        ) {
            // USB port power glitch / WiFi deauth: the transport drops
            // and stays down until the controller reconnects it.
            self.host.transport.disconnect();
            return Err(HostError::Transport(TransportError::Disconnected));
        }
        self.services.inc();
        self.host.start_service(service)?;
        for _ in 0..PUMP_BUDGET {
            self.daemon.poll(&self.daemon_end)?;
            if let Some(out) = self.host.process()? {
                return Ok(out);
            }
        }
        Err(HostError::Stalled("service"))
    }

    /// `adb shell <cmd>`.
    pub fn shell(&mut self, cmd: &str) -> Result<String, HostError> {
        let out = self.execute(&format!("shell:{cmd}"))?;
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    /// `adb logcat -d`.
    pub fn logcat(&mut self) -> Result<String, HostError> {
        self.shell("logcat -d")
    }

    /// `adb shell dumpsys <service>`.
    pub fn dumpsys(&mut self, service: &str) -> Result<String, HostError> {
        self.shell(&format!("dumpsys {service}"))
    }

    /// `adb shell input tap x y`.
    pub fn input_tap(&mut self, x: u32, y: u32) -> Result<(), HostError> {
        self.shell(&format!("input tap {x} {y}")).map(drop)
    }

    /// `adb shell input swipe` (scrolls in the paper's workload).
    pub fn input_swipe(
        &mut self,
        x1: u32,
        y1: u32,
        x2: u32,
        y2: u32,
        ms: u32,
    ) -> Result<(), HostError> {
        self.shell(&format!("input swipe {x1} {y1} {x2} {y2} {ms}"))
            .map(drop)
    }

    /// `adb shell input keyevent <code>`.
    pub fn input_keyevent(&mut self, code: u32) -> Result<(), HostError> {
        self.shell(&format!("input keyevent {code}")).map(drop)
    }

    /// `adb shell am start` an activity.
    pub fn start_activity(&mut self, component: &str) -> Result<(), HostError> {
        self.shell(&format!("am start -n {component}")).map(drop)
    }

    /// `adb shell am force-stop`.
    pub fn force_stop(&mut self, package: &str) -> Result<(), HostError> {
        self.shell(&format!("am force-stop {package}")).map(drop)
    }

    /// `adb shell pm clear` (the workload's "clean browser state" step).
    pub fn pm_clear(&mut self, package: &str) -> Result<(), HostError> {
        self.shell(&format!("pm clear {package}")).map(drop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::MockServices;

    fn link(accept: bool) -> AdbLink<MockServices> {
        let services = MockServices {
            accept_new_keys: accept,
            ..Default::default()
        };
        AdbLink::new(
            services,
            TransportKind::WiFi,
            AdbKey::generate("test-host", 1),
        )
    }

    #[test]
    fn first_contact_registers_key_and_connects() {
        let mut l = link(true);
        let banner = l.connect().unwrap();
        assert!(banner.starts_with("device::"));
        assert_eq!(l.services().trusted.len(), 1);
    }

    #[test]
    fn declined_key_is_auth_rejected() {
        let mut l = link(false);
        assert_eq!(l.connect().unwrap_err(), HostError::AuthRejected);
    }

    #[test]
    fn second_connect_uses_signature_only() {
        let mut l = link(true);
        l.connect().unwrap();
        let offered_before = l.services().trusted.len();
        // New session, same key: should authenticate by signature without
        // another key offer.
        l.reconnect_transport();
        l.connect().unwrap();
        assert_eq!(l.services().trusted.len(), offered_before);
    }

    #[test]
    fn shell_round_trip() {
        let mut l = link(true);
        l.connect().unwrap();
        let out = l.shell("echo battery").unwrap();
        assert_eq!(out, "battery\n");
    }

    #[test]
    fn service_refused_surfaces() {
        let mut l = link(true);
        l.connect().unwrap();
        let err = l.execute("shell:fail").unwrap_err();
        assert_eq!(err, HostError::ServiceRefused("shell:fail".into()));
    }

    #[test]
    fn execute_without_connect_fails() {
        let mut l = link(true);
        assert_eq!(l.execute("shell:id").unwrap_err(), HostError::NotConnected);
    }

    #[test]
    fn disconnect_breaks_then_reconnect_heals() {
        let mut l = link(true);
        l.connect().unwrap();
        l.disconnect_transport();
        assert!(matches!(
            l.shell("echo x").unwrap_err(),
            HostError::Transport(TransportError::Disconnected)
        ));
        l.reconnect_transport();
        l.connect().unwrap();
        assert_eq!(l.shell("echo x").unwrap(), "x\n");
    }

    #[test]
    fn helper_commands_reach_device() {
        let mut l = link(true);
        l.connect().unwrap();
        l.input_tap(100, 200).unwrap();
        l.input_swipe(500, 1500, 500, 300, 300).unwrap();
        l.pm_clear("com.android.chrome").unwrap();
        let executed = &l.services().executed;
        assert!(executed.iter().any(|s| s == "shell:input tap 100 200"));
        assert!(executed
            .iter()
            .any(|s| s == "shell:input swipe 500 1500 500 300 300"));
        assert!(executed
            .iter()
            .any(|s| s == "shell:pm clear com.android.chrome"));
    }

    #[test]
    fn injected_transport_reset_severs_until_reconnect() {
        use batterylab_faults::{FaultInjector, FaultKind, FaultPlan};
        let mut l = link(true);
        l.connect().unwrap();
        let plan = FaultPlan::new().next_n("adb.transport", FaultKind::TransportReset, 1);
        l.set_faults(&FaultInjector::new(&plan, 9), "adb.transport");
        assert!(matches!(
            l.shell("echo x").unwrap_err(),
            HostError::Transport(TransportError::Disconnected)
        ));
        // The transport stays down (reset, not a one-command blip) …
        assert!(matches!(
            l.shell("echo x").unwrap_err(),
            HostError::Transport(TransportError::Disconnected)
        ));
        // … until the controller reconnects and re-handshakes.
        l.reconnect_transport();
        l.connect().unwrap();
        assert_eq!(l.shell("echo x").unwrap(), "x\n");
    }

    #[test]
    fn telemetry_counts_frames_and_reconnects() {
        let registry = Registry::new();
        let services = MockServices {
            accept_new_keys: true,
            ..Default::default()
        };
        let mut l = AdbLink::new(
            services,
            TransportKind::WiFi,
            AdbKey::generate("test-host", 1),
        )
        .with_telemetry(&registry);
        l.connect().unwrap();
        l.shell("echo battery").unwrap();
        l.disconnect_transport();
        l.reconnect_transport();
        l.connect().unwrap();
        let report = registry.snapshot();
        assert_eq!(report.counter("adb.connects"), 2);
        assert_eq!(report.counter("adb.reconnects"), 1);
        assert_eq!(report.counter("adb.services"), 1);
        assert!(report.counter("adb.frames_tx") >= 4);
        assert!(report.counter("adb.frames_rx") >= 4);
        assert!(report.counter("adb.bytes_tx") > 0);
        assert!(report.histogram("adb.frame_payload_bytes").unwrap().count > 0);
    }

    #[test]
    fn large_output_crosses_multiple_writes() {
        // MockServices echoes back service names; use a daemon-level test
        // instead: craft a service whose output exceeds MAX_PAYLOAD.
        struct BigOutput;
        impl DeviceServices for BigOutput {
            fn identity(&self) -> String {
                "device::big;".into()
            }
            fn auth_required(&self) -> bool {
                false
            }
            fn is_key_trusted(&self, _: &str) -> bool {
                false
            }
            fn offer_key(&mut self, _: &str) -> bool {
                true
            }
            fn exec(&mut self, _: &str) -> Result<Vec<u8>, String> {
                Ok(vec![0xA5; (MAX_PAYLOAD as usize) * 2 + 17])
            }
        }
        let mut l = AdbLink::new(BigOutput, TransportKind::Usb, AdbKey::generate("h", 2));
        l.connect().unwrap();
        let out = l.execute("shell:dump").unwrap();
        assert_eq!(out.len(), (MAX_PAYLOAD as usize) * 2 + 17);
        assert!(out.iter().all(|&b| b == 0xA5));
    }
}
