//! Byte transports carrying ADB traffic.
//!
//! §3.3 of the paper: ADB commands can travel over USB, WiFi or Bluetooth,
//! and the choice matters —
//!
//! * **USB** is the most reliable but *powers the device*, corrupting any
//!   concurrent battery measurement;
//! * **WiFi** leaves the battery path clean but occupies the network under
//!   test;
//! * **Bluetooth** works alongside cellular experiments but requires a
//!   rooted device.
//!
//! A [`TransportEnd`] is one side of an in-memory duplex pipe with the
//! metadata each medium carries (kind, link profile, byte counters,
//! connected state). Higher layers read those to apply timing and energy
//! costs.

use std::collections::VecDeque;
use std::sync::Arc;

use batterylab_net::LinkProfile;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// The medium a transport runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportKind {
    /// USB cable to the controller hub (powers the device!).
    Usb,
    /// TCP over the vantage point's WiFi AP.
    WiFi,
    /// RFCOMM over Bluetooth (requires a rooted device for adbd).
    Bluetooth,
}

impl TransportKind {
    /// Whether this medium delivers bus power to the device — the §3.3
    /// interference that forbids USB automation during measurements.
    pub fn powers_device(self) -> bool {
        matches!(self, TransportKind::Usb)
    }

    /// Representative link characteristics of the medium.
    pub fn default_profile(self) -> LinkProfile {
        match self {
            // USB 2.0 high-speed, effectively instant for control traffic.
            TransportKind::Usb => LinkProfile::new(280.0, 280.0, 0.5, 0.0),
            TransportKind::WiFi => LinkProfile::fast_wifi(),
            TransportKind::Bluetooth => LinkProfile::bluetooth(),
        }
    }
}

/// Transport failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer (or the USB hub port) went away.
    Disconnected,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport disconnected"),
        }
    }
}

impl std::error::Error for TransportError {}

struct Shared {
    a_to_b: VecDeque<u8>,
    b_to_a: VecDeque<u8>,
    connected: bool,
    a_sent: u64,
    b_sent: u64,
}

/// One end of a duplex transport.
pub struct TransportEnd {
    shared: Arc<Mutex<Shared>>,
    kind: TransportKind,
    profile: LinkProfile,
    is_a: bool,
}

/// Create a connected pair of transport ends over `kind`'s default link.
pub fn duplex(kind: TransportKind) -> (TransportEnd, TransportEnd) {
    duplex_with_profile(kind, kind.default_profile())
}

/// Create a connected pair with an explicit link profile (e.g. WiFi behind
/// a VPN tunnel).
pub fn duplex_with_profile(
    kind: TransportKind,
    profile: LinkProfile,
) -> (TransportEnd, TransportEnd) {
    let shared = Arc::new(Mutex::new(Shared {
        a_to_b: VecDeque::new(),
        b_to_a: VecDeque::new(),
        connected: true,
        a_sent: 0,
        b_sent: 0,
    }));
    (
        TransportEnd {
            shared: Arc::clone(&shared),
            kind,
            profile,
            is_a: true,
        },
        TransportEnd {
            shared,
            kind,
            profile,
            is_a: false,
        },
    )
}

impl TransportEnd {
    /// The medium.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// Link characteristics of this transport.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Queue bytes toward the peer.
    pub fn send(&self, data: &[u8]) -> Result<(), TransportError> {
        let mut s = self.shared.lock();
        if !s.connected {
            return Err(TransportError::Disconnected);
        }
        if self.is_a {
            s.a_to_b.extend(data);
            s.a_sent += data.len() as u64;
        } else {
            s.b_to_a.extend(data);
            s.b_sent += data.len() as u64;
        }
        Ok(())
    }

    /// Drain everything the peer has sent so far. Empty vec when nothing
    /// is pending. Receiving still works after disconnection (bytes in
    /// flight are delivered), matching socket semantics.
    pub fn recv(&self) -> Vec<u8> {
        let mut s = self.shared.lock();
        let q = if self.is_a {
            &mut s.b_to_a
        } else {
            &mut s.a_to_b
        };
        q.drain(..).collect()
    }

    /// Bytes this end has sent.
    pub fn bytes_sent(&self) -> u64 {
        let s = self.shared.lock();
        if self.is_a {
            s.a_sent
        } else {
            s.b_sent
        }
    }

    /// Bytes the peer has sent (delivered or in flight).
    pub fn bytes_received_total(&self) -> u64 {
        let s = self.shared.lock();
        if self.is_a {
            s.b_sent
        } else {
            s.a_sent
        }
    }

    /// Whether the pipe is up.
    pub fn is_connected(&self) -> bool {
        self.shared.lock().connected
    }

    /// Tear the pipe down (USB port powered off, WiFi dropped…). Both
    /// ends observe it.
    pub fn disconnect(&self) {
        self.shared.lock().connected = false;
    }

    /// Re-establish the pipe (USB port re-powered). In-flight queues were
    /// preserved; real reconnects re-handshake at the protocol layer.
    pub fn reconnect(&self) {
        self.shared.lock().connected = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_flow_both_ways() {
        let (a, b) = duplex(TransportKind::WiFi);
        a.send(b"ping").unwrap();
        assert_eq!(b.recv(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv(), b"pong");
        assert_eq!(a.recv(), Vec::<u8>::new());
    }

    #[test]
    fn counters_track_traffic() {
        let (a, b) = duplex(TransportKind::Usb);
        a.send(&[0u8; 100]).unwrap();
        a.send(&[0u8; 50]).unwrap();
        b.send(&[0u8; 7]).unwrap();
        assert_eq!(a.bytes_sent(), 150);
        assert_eq!(b.bytes_sent(), 7);
        assert_eq!(a.bytes_received_total(), 7);
        assert_eq!(b.bytes_received_total(), 150);
    }

    #[test]
    fn disconnect_fails_sends_only() {
        let (a, b) = duplex(TransportKind::WiFi);
        a.send(b"in flight").unwrap();
        b.disconnect();
        assert_eq!(a.send(b"more"), Err(TransportError::Disconnected));
        // In-flight data still drains.
        assert_eq!(b.recv(), b"in flight");
        assert!(!a.is_connected());
        a.reconnect();
        assert!(a.send(b"back").is_ok());
    }

    #[test]
    fn only_usb_powers_device() {
        assert!(TransportKind::Usb.powers_device());
        assert!(!TransportKind::WiFi.powers_device());
        assert!(!TransportKind::Bluetooth.powers_device());
    }

    #[test]
    fn medium_profiles_rank_sensibly() {
        let usb = TransportKind::Usb.default_profile();
        let wifi = TransportKind::WiFi.default_profile();
        let bt = TransportKind::Bluetooth.default_profile();
        assert!(usb.down_mbps > wifi.down_mbps);
        assert!(wifi.down_mbps > bt.down_mbps);
        assert!(bt.rtt_ms > wifi.rtt_ms);
    }
}
