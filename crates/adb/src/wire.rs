//! ADB wire protocol framing.
//!
//! Every ADB message is a 24-byte little-endian header optionally followed
//! by a payload:
//!
//! ```text
//! struct message {
//!     command     u32   // command identifier
//!     arg0        u32   // first argument
//!     arg1        u32   // second argument
//!     data_length u32   // payload length
//!     data_check  u32   // byte-sum of the payload
//!     magic       u32   // command ^ 0xffffffff
//! }
//! ```
//!
//! This module encodes/decodes that framing exactly (including the check
//! that `magic` matches and the payload byte-sum verifies), following the
//! smoltcp school: parse defensively, never panic on wire input.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// `CNXN` — connection handshake.
pub const A_CNXN: u32 = 0x4e58_4e43;
/// `AUTH` — authentication exchange.
pub const A_AUTH: u32 = 0x4854_5541;
/// `OPEN` — open a stream to a service.
pub const A_OPEN: u32 = 0x4e45_504f;
/// `OKAY` — stream ready / ack.
pub const A_OKAY: u32 = 0x5941_4b4f;
/// `WRTE` — stream payload.
pub const A_WRTE: u32 = 0x4554_5257;
/// `CLSE` — stream close.
pub const A_CLSE: u32 = 0x4553_4c43;
/// `SYNC` — legacy sync (unused by modern stacks but part of the protocol).
pub const A_SYNC: u32 = 0x434e_5953;

/// Protocol version exchanged in `CNXN`.
pub const ADB_VERSION: u32 = 0x0100_0000;
/// Maximum payload either side accepts, exchanged in `CNXN`.
pub const MAX_PAYLOAD: u32 = 256 * 1024;

/// AUTH subtype: device → host challenge token.
pub const AUTH_TOKEN: u32 = 1;
/// AUTH subtype: host → device signed token.
pub const AUTH_SIGNATURE: u32 = 2;
/// AUTH subtype: host → device public key (first contact).
pub const AUTH_RSAPUBLICKEY: u32 = 3;

/// Size of the fixed header.
pub const HEADER_LEN: usize = 24;

/// Framing/validation errors. These indicate a corrupt or hostile peer,
/// never a recoverable condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// `magic` was not `command ^ 0xffffffff`.
    BadMagic {
        /// Received command word.
        command: u32,
        /// Received magic word.
        magic: u32,
    },
    /// Unknown command word.
    UnknownCommand(u32),
    /// Payload byte-sum mismatch.
    BadChecksum {
        /// Checksum declared in the header.
        expected: u32,
        /// Checksum computed over the payload.
        actual: u32,
    },
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic { command, magic } => {
                write!(f, "bad magic {magic:#x} for command {command:#x}")
            }
            WireError::UnknownCommand(c) => write!(f, "unknown command {c:#x}"),
            WireError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: header {expected:#x}, payload {actual:#x}"
                )
            }
            WireError::Oversized(n) => write!(f, "payload of {n} bytes exceeds MAX_PAYLOAD"),
        }
    }
}

impl std::error::Error for WireError {}

/// One ADB message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Command word (one of the `A_*` constants).
    pub command: u32,
    /// First argument (meaning depends on command).
    pub arg0: u32,
    /// Second argument.
    pub arg1: u32,
    /// Payload.
    pub payload: Bytes,
}

/// ADB's "checksum": the wrapping byte-sum of the payload.
pub fn checksum(payload: &[u8]) -> u32 {
    payload
        .iter()
        .fold(0u32, |acc, &b| acc.wrapping_add(b as u32))
}

fn known_command(c: u32) -> bool {
    matches!(
        c,
        A_CNXN | A_AUTH | A_OPEN | A_OKAY | A_WRTE | A_CLSE | A_SYNC
    )
}

impl Packet {
    /// Build a packet.
    pub fn new(command: u32, arg0: u32, arg1: u32, payload: impl Into<Bytes>) -> Self {
        let payload = payload.into();
        assert!(
            payload.len() <= MAX_PAYLOAD as usize,
            "payload exceeds MAX_PAYLOAD"
        );
        Packet {
            command,
            arg0,
            arg1,
            payload,
        }
    }

    /// Payload as UTF-8 (lossy), without a trailing NUL if present —
    /// handy for the ASCII bodies of CNXN/OPEN.
    pub fn text(&self) -> String {
        let raw: &[u8] = match self.payload.split_last() {
            Some((0, rest)) => rest,
            _ => &self.payload,
        };
        String::from_utf8_lossy(raw).into_owned()
    }

    /// Serialise to wire bytes (header + payload).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        buf.put_u32_le(self.command);
        buf.put_u32_le(self.arg0);
        buf.put_u32_le(self.arg1);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_u32_le(checksum(&self.payload));
        buf.put_u32_le(self.command ^ 0xffff_ffff);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Try to decode one packet from the front of `buf`.
    ///
    /// Returns `Ok(None)` when more bytes are needed (partial frame);
    /// consumes the frame from `buf` only on success.
    pub fn decode(buf: &mut BytesMut) -> Result<Option<Packet>, WireError> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        // Peek the header without consuming.
        let mut header = &buf[..HEADER_LEN];
        let command = header.get_u32_le();
        let arg0 = header.get_u32_le();
        let arg1 = header.get_u32_le();
        let data_length = header.get_u32_le();
        let data_check = header.get_u32_le();
        let magic = header.get_u32_le();

        if magic != command ^ 0xffff_ffff {
            return Err(WireError::BadMagic { command, magic });
        }
        if !known_command(command) {
            return Err(WireError::UnknownCommand(command));
        }
        if data_length > MAX_PAYLOAD {
            return Err(WireError::Oversized(data_length));
        }
        let total = HEADER_LEN + data_length as usize;
        if buf.len() < total {
            return Ok(None);
        }
        buf.advance(HEADER_LEN);
        let payload = buf.split_to(data_length as usize).freeze();
        let actual = checksum(&payload);
        if actual != data_check {
            return Err(WireError::BadChecksum {
                expected: data_check,
                actual,
            });
        }
        Ok(Some(Packet {
            command,
            arg0,
            arg1,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_words_are_ascii() {
        assert_eq!(&A_CNXN.to_le_bytes(), b"CNXN");
        assert_eq!(&A_AUTH.to_le_bytes(), b"AUTH");
        assert_eq!(&A_OPEN.to_le_bytes(), b"OPEN");
        assert_eq!(&A_OKAY.to_le_bytes(), b"OKAY");
        assert_eq!(&A_WRTE.to_le_bytes(), b"WRTE");
        assert_eq!(&A_CLSE.to_le_bytes(), b"CLSE");
        assert_eq!(&A_SYNC.to_le_bytes(), b"SYNC");
    }

    #[test]
    fn round_trip() {
        let p = Packet::new(A_WRTE, 7, 9, &b"hello adb"[..]);
        let mut buf = BytesMut::from(&p.encode()[..]);
        let q = Packet::decode(&mut buf).unwrap().unwrap();
        assert_eq!(p, q);
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frames_wait_for_more() {
        let p = Packet::new(A_OPEN, 1, 0, &b"shell:ls"[..]);
        let encoded = p.encode();
        for cut in [0, 5, HEADER_LEN - 1, HEADER_LEN, encoded.len() - 1] {
            let mut buf = BytesMut::from(&encoded[..cut]);
            assert_eq!(Packet::decode(&mut buf), Ok(None), "cut at {cut}");
            assert_eq!(buf.len(), cut, "partial decode must not consume");
        }
    }

    #[test]
    fn two_packets_back_to_back() {
        let a = Packet::new(A_OKAY, 1, 2, Bytes::new());
        let b = Packet::new(A_WRTE, 1, 2, &b"data"[..]);
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&a.encode());
        buf.extend_from_slice(&b.encode());
        assert_eq!(Packet::decode(&mut buf).unwrap().unwrap(), a);
        assert_eq!(Packet::decode(&mut buf).unwrap().unwrap(), b);
        assert_eq!(Packet::decode(&mut buf), Ok(None));
    }

    #[test]
    fn bad_magic_rejected() {
        let p = Packet::new(A_WRTE, 0, 0, &b"x"[..]);
        let mut bytes = BytesMut::from(&p.encode()[..]);
        bytes[20] ^= 0xff; // corrupt magic
        let err = Packet::decode(&mut bytes).unwrap_err();
        assert!(matches!(err, WireError::BadMagic { .. }));
    }

    #[test]
    fn corrupt_payload_rejected() {
        let p = Packet::new(A_WRTE, 0, 0, &b"payload"[..]);
        let mut bytes = BytesMut::from(&p.encode()[..]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = Packet::decode(&mut bytes).unwrap_err();
        assert!(matches!(err, WireError::BadChecksum { .. }));
    }

    #[test]
    fn unknown_command_rejected() {
        let mut raw = BytesMut::new();
        let cmd = 0xdead_beefu32;
        raw.put_u32_le(cmd);
        raw.put_u32_le(0);
        raw.put_u32_le(0);
        raw.put_u32_le(0);
        raw.put_u32_le(0);
        raw.put_u32_le(cmd ^ 0xffff_ffff);
        assert_eq!(
            Packet::decode(&mut raw).unwrap_err(),
            WireError::UnknownCommand(cmd)
        );
    }

    #[test]
    fn oversized_rejected_before_buffering() {
        let mut raw = BytesMut::new();
        raw.put_u32_le(A_WRTE);
        raw.put_u32_le(0);
        raw.put_u32_le(0);
        raw.put_u32_le(MAX_PAYLOAD + 1);
        raw.put_u32_le(0);
        raw.put_u32_le(A_WRTE ^ 0xffff_ffff);
        assert_eq!(
            Packet::decode(&mut raw).unwrap_err(),
            WireError::Oversized(MAX_PAYLOAD + 1)
        );
    }

    #[test]
    fn text_strips_trailing_nul() {
        let p = Packet::new(A_OPEN, 0, 0, &b"shell:id\0"[..]);
        assert_eq!(p.text(), "shell:id");
        let q = Packet::new(A_OPEN, 0, 0, &b"no-nul"[..]);
        assert_eq!(q.text(), "no-nul");
    }

    #[test]
    fn checksum_is_byte_sum() {
        assert_eq!(checksum(b""), 0);
        assert_eq!(checksum(b"\x01\x02\x03"), 6);
        assert_eq!(checksum(&[0xff; 4]), 0xff * 4);
    }
}
