//! # batterylab-adb
//!
//! A from-scratch Android Debug Bridge implementation: the 24-byte-header
//! wire protocol ([`wire`]), token/signature/public-key authentication
//! ([`auth`]), duplex transports over USB, WiFi and Bluetooth
//! ([`transport`]), the device-side daemon ([`daemon`]) and the host
//! client ([`host`]).
//!
//! §3.3 of the paper turns on transport choice: USB is reliable but powers
//! the device (corrupting measurements), WiFi is clean but occupies the
//! network under test, Bluetooth needs root. All three are first-class
//! here, with the power/root constraints encoded in the types.

#![warn(missing_docs)]

pub mod auth;
pub mod daemon;
pub mod host;
pub mod services;
pub mod transport;
pub mod wire;

pub use auth::{AdbKey, PublicKey};
pub use daemon::{AdbDaemon, DaemonError};
pub use host::{AdbHostClient, AdbLink, HostError};
pub use services::{DeviceServices, MockServices};
pub use transport::{duplex, duplex_with_profile, TransportEnd, TransportError, TransportKind};
pub use wire::{Packet, WireError};

#[cfg(test)]
mod proptests {
    use super::wire::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn arb_command() -> impl Strategy<Value = u32> {
        prop::sample::select(vec![A_CNXN, A_AUTH, A_OPEN, A_OKAY, A_WRTE, A_CLSE, A_SYNC])
    }

    proptest! {
        #[test]
        fn encode_decode_round_trip(cmd in arb_command(), a0: u32, a1: u32,
                                    payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let p = Packet::new(cmd, a0, a1, payload);
            let mut buf = BytesMut::from(&p.encode()[..]);
            let q = Packet::decode(&mut buf).unwrap().unwrap();
            prop_assert_eq!(p, q);
            prop_assert!(buf.is_empty());
        }

        #[test]
        fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut buf = BytesMut::from(&bytes[..]);
            // Any result is fine — Ok(None), Ok(Some), or a WireError — as
            // long as it does not panic.
            let _ = Packet::decode(&mut buf);
        }

        #[test]
        fn single_bitflip_is_detected(a0: u32, a1: u32,
                                      payload in proptest::collection::vec(any::<u8>(), 1..128),
                                      flip_bit in 0usize..64) {
            let p = Packet::new(A_WRTE, a0, a1, payload);
            let encoded = p.encode();
            let mut corrupted = encoded.to_vec();
            let bit = flip_bit % (corrupted.len() * 8);
            corrupted[bit / 8] ^= 1 << (bit % 8);
            let mut buf = BytesMut::from(&corrupted[..]);
            match Packet::decode(&mut buf) {
                // Header corruption in args changes arg0/arg1 but can't be
                // detected without magic coverage — decoding may succeed
                // with different args; it must never return the *original*
                // packet unless the flip hit padding-free equality.
                Ok(Some(q)) => prop_assert!(q != p || corrupted == encoded.to_vec()),
                Ok(None) => {} // truncated-looking: acceptable
                Err(_) => {}   // detected: ideal
            }
        }
    }
}
