//! The boundary between the ADB daemon and the device it runs on.
//!
//! `adbd` itself is transport + protocol; everything it *does* (run shell
//! commands, dump logcat, inject input) is delegated to the device through
//! [`DeviceServices`]. The Android simulator in `batterylab-device`
//! implements this trait; tests use [`MockServices`].

/// What the daemon asks of its device.
pub trait DeviceServices: Send {
    /// The `CNXN` banner, e.g.
    /// `device::ro.product.name=j7duo;ro.product.model=SM-J720F;`.
    fn identity(&self) -> String;

    /// Whether USB-debugging authentication is enforced (it is on any
    /// production build).
    fn auth_required(&self) -> bool {
        true
    }

    /// Is this key fingerprint in the trust store?
    fn is_key_trusted(&self, fingerprint: &str) -> bool;

    /// A new key asks to be trusted (the "Allow USB debugging?" dialog).
    /// Returns true if accepted. BatteryLab vantage points pre-accept the
    /// access server's key during enrolment (§3.4).
    fn offer_key(&mut self, fingerprint: &str) -> bool;

    /// Execute a one-shot service (`shell:…`, `logcat`, …) and return its
    /// output. `Err` becomes a stream failure on the wire.
    fn exec(&mut self, service: &str) -> Result<Vec<u8>, String>;

    /// Whether adbd runs with root privileges (needed for
    /// ADB-over-Bluetooth per §3.3).
    fn is_rooted(&self) -> bool {
        false
    }
}

/// A scriptable device for protocol tests.
pub struct MockServices {
    /// Banner to present.
    pub banner: String,
    /// Trusted fingerprints.
    pub trusted: Vec<String>,
    /// Whether the (simulated) user taps "allow" for new keys.
    pub accept_new_keys: bool,
    /// Whether auth is enforced at all.
    pub require_auth: bool,
    /// Services executed, in order (assertable).
    pub executed: Vec<String>,
    /// Rooted?
    pub rooted: bool,
}

impl Default for MockServices {
    fn default() -> Self {
        MockServices {
            banner: "device::ro.product.name=mock;".to_string(),
            trusted: Vec::new(),
            accept_new_keys: true,
            require_auth: true,
            executed: Vec::new(),
            rooted: false,
        }
    }
}

impl DeviceServices for MockServices {
    fn identity(&self) -> String {
        self.banner.clone()
    }

    fn auth_required(&self) -> bool {
        self.require_auth
    }

    fn is_key_trusted(&self, fingerprint: &str) -> bool {
        self.trusted.iter().any(|f| f == fingerprint)
    }

    fn offer_key(&mut self, fingerprint: &str) -> bool {
        if self.accept_new_keys {
            self.trusted.push(fingerprint.to_string());
            true
        } else {
            false
        }
    }

    fn exec(&mut self, service: &str) -> Result<Vec<u8>, String> {
        self.executed.push(service.to_string());
        match service {
            s if s.starts_with("shell:echo ") => {
                Ok(format!("{}\n", &s["shell:echo ".len()..]).into_bytes())
            }
            "shell:fail" => Err("command failed".to_string()),
            s => Ok(format!("mock:{s}").into_bytes()),
        }
    }

    fn is_rooted(&self) -> bool {
        self.rooted
    }
}
