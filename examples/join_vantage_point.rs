//! The §3.4 "How to Join?" flow, end to end: an institution brings up a
//! controller, opens the required ports, and the admin enrols it — DNS
//! record, wildcard cert deploy, SSH key exchange — then proves the node
//! works by running a first measured job on it.
//!
//! ```sh
//! cargo run --example join_vantage_point
//! ```

use batterylab::automation::Script;
use batterylab::controller::{VantageConfig, VantagePoint};
use batterylab::device::{boot_j7_duo, AndroidDevice, DeviceSpec};
use batterylab::net::LinkProfile;
use batterylab::platform::{Platform, NODE_PORTS};
use batterylab::server::{Constraints, ExperimentSpec, Payload};
use batterylab::sim::{SimRng, SimTime};

fn main() {
    // Start from the existing deployment (node1 at Imperial College).
    let mut platform = Platform::paper_testbed(99);
    println!("existing nodes: {:?}", platform.server.node_names());

    // A new member (say, a lab in Turin) assembles their vantage point:
    // Raspberry Pi + Monsoon + a rooted Pixel-era device + relay board.
    let rng = SimRng::new(99).derive("turin");
    let mut node2 = VantagePoint::new(
        VantageConfig {
            name: "node2".to_string(),
            uplink: LinkProfile::new(80.0, 40.0, 12.0, 0.0001),
            wifi_ap: LinkProfile::fast_wifi(),
            relay_channels: 2,
        },
        rng.derive("vp"),
    );
    let device: AndroidDevice = AndroidDevice::new(
        DeviceSpec::samsung_j7_duo().rooted(),
        "turin-j7-01",
        rng.derive("device"),
        true, // enrolment pre-accepts the access server's ADB key
    );
    device.install_package("com.brave.browser");
    node2.add_device(device);
    // A second device on the same switch — no re-cabling needed later.
    node2.add_device(boot_j7_duo(&rng, "turin-j7-02"));

    // §3.4: the controller must expose 2222 (ssh), 8080 (GUI), 6081
    // (noVNC). Enrolment fails otherwise — try it.
    let bad = platform.server.enroll_node(
        platform.admin_token,
        VantagePoint::new(
            VantageConfig {
                name: "node3".into(),
                ..VantageConfig::imperial_college()
            },
            rng.derive("bad"),
        ),
        "130.192.1.1",
        "hk:node3",
        &[2222, 8080], // forgot noVNC
        SimTime::ZERO,
    );
    println!(
        "enrolment without port 6081: {}",
        bad.err().map(|e| e.to_string()).unwrap_or_default()
    );

    // With all ports open it goes through: DNS published, cert deployed.
    let fqdn = platform
        .server
        .enroll_node(
            platform.admin_token,
            node2,
            "130.192.1.2",
            "hk:node2",
            &NODE_PORTS,
            SimTime::ZERO,
        )
        .expect("ports open, name free");
    println!("node2 enrolled : https://{fqdn}");
    println!(
        "DNS            : {fqdn} -> {}",
        platform
            .server
            .registry()
            .resolve(&fqdn)
            .expect("published")
    );
    println!(
        "wildcard cert  : serial {} deployed",
        platform.server.registry().certificate().serial
    );

    // Prove the node works: a measured smoke job targeted at node2.
    let id = platform
        .server
        .submit_job(
            platform.experimenter_token,
            "node2-smoke-test",
            Constraints {
                node: Some("node2".to_string()),
                device: Some("turin-j7-01".to_string()),
                ..Default::default()
            },
            Payload::Experiment(ExperimentSpec::measured(
                "turin-j7-01",
                Script::browser_workload("com.brave.browser", &["https://news.bbc.co.uk"], 2),
            )),
        )
        .expect("experimenter may submit");
    platform.server.tick().expect("dispatches to node2");
    let build = platform
        .server
        .build(platform.experimenter_token, id)
        .expect("recorded");
    println!(
        "smoke test     : {:?} on {:?} — {:.2} mAh",
        build.state,
        build.node,
        build.summary.as_ref().expect("summary")["discharge_mah"]
            .as_f64()
            .unwrap_or(0.0)
    );
}
