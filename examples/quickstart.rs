//! Quickstart: assemble the paper's testbed, run a measured video
//! workload through the Table 1 API and print the battery report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use batterylab::platform::Platform;
use batterylab::sim::SimDuration;

fn main() {
    // One access server + one vantage point (node1, Imperial College)
    // with a Samsung J7 Duo on relay channel 0.
    let mut platform = Platform::paper_testbed(42);
    let serial = platform.j7_serial().to_string();

    println!("enrolled nodes : {:?}", platform.server.node_names());
    println!(
        "node1 DNS      : node1.batterylab.dev -> {}",
        platform
            .server
            .registry()
            .resolve("node1.batterylab.dev")
            .expect("published")
    );

    let vp = platform.node1();
    println!("list_devices   : {:?}", vp.list_devices());

    // The Table 1 workflow: energise the meter through the WiFi socket,
    // program 4.0 V, flip the relay to the battery bypass, start sampling.
    vp.power_monitor().expect("socket reachable");
    vp.set_voltage(4.0).expect("within 0.8-13.5 V");
    vp.batt_switch(&serial).expect("relay channel attached");
    vp.start_monitor(&serial).expect("armed");

    // The workload: 60 seconds of hardware-decoded mp4 playback, the
    // Fig. 2 scenario.
    let device = vp.device_handle(&serial).expect("device attached");
    device.with_sim(|sim| {
        sim.set_screen(true);
        sim.play_video(SimDuration::from_secs(60));
    });

    let report = vp.stop_monitor_at_rate(1000.0).expect("measurement ends");
    let cdf = report.cdf();
    println!("\nbattery report for {serial}:");
    println!(
        "  samples      : {} @ {} Hz",
        report.samples.len(),
        report.rate_hz
    );
    println!(
        "  median       : {:.1} mA (paper's operating point: ~160 mA)",
        cdf.median()
    );
    println!(
        "  p10..p90     : {:.1}..{:.1} mA",
        cdf.quantile(0.1),
        cdf.quantile(0.9)
    );
    println!("  mean current : {:.1} mA", report.mean_ma());
    println!(
        "  discharge    : {:.2} mAh over {:.0} s",
        report.mah(),
        (report.window.1 - report.window.0).as_secs_f64()
    );

    // Logs are a shell command away, like `adb logcat`.
    let logcat = vp.execute_adb(&serial, "logcat -d").expect("adb over wifi");
    println!("\nlogcat lines   : {}", logcat.lines().count());
}
