//! §4.3 "Location, Location, Location": characterise the five ProtonVPN
//! exits (Table 2) and measure Brave/Chrome energy through each tunnel
//! (Figure 6) — including the Japan anomaly, where smaller ads cut
//! Chrome's traffic and energy.
//!
//! ```sh
//! cargo run --release --example vpn_locations
//! ```

use batterylab::eval::{fig6, table2, EvalConfig};
use batterylab::net::VpnLocation;

fn main() {
    let config = EvalConfig::quick(43);

    let t2 = table2::run(&config);
    println!("{}", t2.render());

    println!(
        "measuring Brave & Chrome through each tunnel ({} reps)...\n",
        config.reps
    );
    let f6 = fig6::run(&config);
    println!("{}", f6.render());

    let japan = f6.bar("Chrome", VpnLocation::Japan).discharge_mah.mean;
    let california = f6.bar("Chrome", VpnLocation::California).discharge_mah.mean;
    println!(
        "Chrome: Japan {japan:.2} mAh vs California {california:.2} mAh — \
         the Japanese exit serves ~20% smaller ads (the paper's Fig. 6 finding)."
    );
}
