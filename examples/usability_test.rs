//! A usability test with a remote participant: the experimenter shares a
//! noVNC page (toolbar hidden), a recruited tester clicks around the
//! device while the Monsoon records, and the click-to-display latency is
//! probed like §4.2 (paper: 1.44 ± 0.12 s co-located).
//!
//! ```sh
//! cargo run --example usability_test
//! ```

use batterylab::controller::{GuiSession, ToolbarAction};
use batterylab::mirror::{colocated_path, LatencyProbe};
use batterylab::platform::Platform;
use batterylab::sim::{SimDuration, SimRng};

fn main() {
    let mut platform = Platform::paper_testbed(7);
    let serial = platform.j7_serial().to_string();

    // The experimenter's page: toolbar visible, full API access.
    let mut experimenter = GuiSession::new(&serial, true);
    {
        let vp = platform.node1();
        experimenter
            .click_toolbar(vp, ToolbarAction::PowerMonitor)
            .expect("meter on");
        experimenter
            .click_toolbar(vp, ToolbarAction::SetVoltage(4.0))
            .expect("voltage ok");
        experimenter
            .click_toolbar(vp, ToolbarAction::BattSwitch)
            .expect("bypass engaged");
        experimenter
            .click_toolbar(vp, ToolbarAction::DeviceMirroring)
            .expect("mirroring on");
        vp.attach_viewer(&serial, "batterylab").expect("viewer");
        experimenter
            .click_toolbar(vp, ToolbarAction::StartMonitor)
            .expect("measuring");
    }

    // The tester's page: same device, toolbar hidden — they can only
    // interact with the mirrored screen.
    let mut tester = GuiSession::new(&serial, false);
    {
        let vp = platform.node1();
        assert!(
            tester
                .click_toolbar(vp, ToolbarAction::PowerMonitor)
                .is_err(),
            "testers must not reach the instruments"
        );
        // Scripted participant: open the browser, poke around.
        vp.execute_adb(&serial, "am start -n com.brave.browser/.Main")
            .expect("launch");
        for (x, y) in [(540, 900), (540, 1400), (200, 600), (800, 1100)] {
            tester.click_screen(vp, x, y).expect("tap forwarded");
            let device = vp.device_handle(&serial).expect("device");
            device.with_sim(|s| s.idle(SimDuration::from_secs(3)));
        }
    }

    // Wrap up: stop the measurement, read the numbers.
    let (mah, upload) = {
        let vp = platform.node1();
        let out = experimenter
            .click_toolbar(vp, ToolbarAction::StopMonitor)
            .expect("report");
        vp.pump_mirrors().expect("pump");
        (out, vp.mirror_upload_bytes())
    };
    println!("tester clicks    : {}", tester.clicks());
    println!("measurement      : {mah}");
    println!("mirror upload    : {:.2} MB", upload as f64 / 1e6);

    // §4.2's latency protocol: 40 annotated trials, co-located viewer.
    let probe = LatencyProbe::new(colocated_path());
    let mut rng = SimRng::new(7).derive("latency");
    let (_, summary) = probe.run_trials(40, &mut rng);
    println!(
        "click-to-display : {:.2} ± {:.2} s over {} trials (paper: 1.44 ± 0.12 s)",
        summary.mean, summary.std_dev, summary.n
    );
}
