//! The §4.2 demonstration: *which of today's Android browsers is the most
//! energy efficient?*
//!
//! Automates Chrome, Firefox, Edge and Brave over ADB-WiFi against the
//! ten-news-site workload, measures each with the Monsoon, and prints the
//! Figure 3 bars (plus the Figure 4 CPU medians). Jobs go through the
//! access server's queue, exactly like an experimenter's pipeline.
//!
//! ```sh
//! cargo run --release --example browser_showdown          # quick pass
//! cargo run --release --example browser_showdown -- full  # paper-scale
//! ```

use batterylab::eval::{fig3, fig4, EvalConfig};

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let config = if full {
        EvalConfig::default()
    } else {
        EvalConfig::quick(2019)
    };
    println!(
        "running the browser workload: {} sites x {} reps x 4 browsers x 2 mirroring modes...\n",
        config.sites, config.reps
    );

    let f3 = fig3::run(&config);
    println!("{}", f3.render());
    println!("ranking (cheapest first): {:?}\n", f3.ranking());

    let f4 = fig4::run(&config);
    println!("{}", f4.render());

    let brave = f4.line("Brave", false).cpu.median();
    let chrome = f4.line("Chrome", false).cpu.median();
    println!(
        "paper check: Brave median CPU {brave:.0}% (paper ~12%), Chrome {chrome:.0}% (paper ~20%)"
    );
}
