//! The platform's §1 vision made concrete: heterogeneous devices at
//! multiple vantage points, measured concurrently by the fleet executor.
//!
//! Three nodes — a flagship, the paper's mid-ranger, a budget phone —
//! each run the same Brave workload; the per-device energy differences
//! are exactly the kind of result a single-bench testbed can't produce.
//!
//! ```sh
//! cargo run --release --example heterogeneous_fleet
//! ```

use std::collections::BTreeMap;

use batterylab::automation::Script;
use batterylab::controller::{VantageConfig, VantagePoint};
use batterylab::device::{AndroidDevice, DeviceSpec, PowerModel};
use batterylab::net::LinkProfile;
use batterylab::server::{ExperimentSpec, FleetExecutor, FleetJob, JobId};
use batterylab::sim::SimRng;

fn main() {
    let rng = SimRng::new(77);

    // Three vantage points with three very different phones.
    let fleet_spec: [(&str, &str, PowerModel, DeviceSpec); 3] = [
        (
            "node-london",
            "j7duo-01",
            PowerModel::samsung_j7_duo(),
            DeviceSpec::samsung_j7_duo(),
        ),
        (
            "node-zurich",
            "pixel3-01",
            PowerModel::pixel_3(),
            DeviceSpec {
                model: "Pixel 3".to_string(),
                product: "blueline".to_string(),
                api_level: 28,
                battery_mah: 2915.0,
                ..DeviceSpec::samsung_j7_duo()
            },
        ),
        (
            "node-delhi",
            "galaxy-a10-01",
            PowerModel::budget_a10(),
            DeviceSpec {
                model: "Galaxy A10".to_string(),
                product: "a10".to_string(),
                api_level: 28,
                cpu_cores: 4,
                battery_mah: 3400.0,
                ..DeviceSpec::samsung_j7_duo()
            },
        ),
    ];

    let mut nodes = BTreeMap::new();
    for (node_name, serial, model, spec) in fleet_spec.iter().cloned() {
        let mut vp = VantagePoint::new(
            VantageConfig {
                name: node_name.to_string(),
                uplink: LinkProfile::campus_uplink(),
                wifi_ap: LinkProfile::fast_wifi(),
                relay_channels: 2,
            },
            rng.derive(node_name),
        );
        let device = AndroidDevice::new_with_model(
            spec,
            model,
            serial,
            rng.derive(&format!("dev/{serial}")),
            true,
        );
        device.install_package("com.brave.browser");
        vp.add_device(device);
        nodes.insert(node_name.to_string(), vp);
    }

    // One worker thread per node: the three workloads run concurrently.
    let mut executor = FleetExecutor::start(nodes);
    let script = Script::browser_workload(
        "com.brave.browser",
        &[
            "https://news.bbc.co.uk",
            "https://reuters.com",
            "https://cnn.com",
        ],
        4,
    );
    for (i, (node_name, serial, _, _)) in fleet_spec.iter().enumerate() {
        executor
            .dispatch(
                node_name,
                FleetJob {
                    id: JobId(i as u64 + 1),
                    name: format!("brave-on-{serial}"),
                    spec: ExperimentSpec::measured(serial, script.clone()),
                },
            )
            .expect("node exists");
    }

    println!("dispatched 3 concurrent measured workloads across the fleet...\n");
    println!("{:<14} {:>14} {:>12}", "node", "discharge mAh", "mean mA");
    for _ in 0..3 {
        let result = executor.next_result().expect("job completes");
        let outcome = result.result.expect("job succeeds");
        println!(
            "{:<14} {:>14.3} {:>12.1}",
            result.node,
            outcome.summary["discharge_mah"].as_f64().unwrap_or(0.0),
            outcome.summary["mean_ma"].as_f64().unwrap_or(0.0),
        );
    }
    let (nodes, leftovers) = executor.shutdown();
    assert!(leftovers.is_empty());
    println!(
        "\nfleet shut down cleanly; {} vantage points returned to the scheduler.",
        nodes.len()
    );
    println!("same workload, three devices — the heterogeneity §1 argues only a shared platform can offer.");
}
