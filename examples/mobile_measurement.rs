//! Mobility support (§2's BattOr future work): measure a phone *on the
//! move* — cellular data, no mains power, no relay bench — with the
//! portable BattOr logger, then compare the same workload on the bench
//! Monsoon over WiFi.
//!
//! ```sh
//! cargo run --example mobile_measurement
//! ```

use batterylab::device::{boot_j7_duo, DataPath, PowerSource};
use batterylab::net::{Direction, LinkProfile};
use batterylab::power::{BattOr, Monsoon};
use batterylab::sim::{SimDuration, SimRng, SimTime};
use batterylab::stats::Cdf;

fn browse_for_two_minutes(device: &batterylab::device::AndroidDevice) {
    device.with_sim(|s| {
        s.set_screen(true);
        for _ in 0..6 {
            s.transfer(2_000_000, Direction::Down, 0.25); // page fetch
            s.run_activity(SimDuration::from_secs(8), 0.2, 0.45); // read + scroll
            s.idle(SimDuration::from_secs(4));
        }
    });
}

fn main() {
    let rng = SimRng::new(314);

    // --- The walk: cellular + BattOr -----------------------------------
    let walker = boot_j7_duo(&rng, "walker-j7");
    walker.with_sim(|s| {
        s.set_data_path(DataPath::Cellular);
        // A mid-band LTE path while moving.
        s.set_network(LinkProfile::new(18.0, 8.0, 55.0, 0.002));
    });
    let mut battor = BattOr::new(rng.derive("battor"));
    browse_for_two_minutes(&walker);
    let walk_end = walker.with_sim(|s| s.now());
    let walk_log = battor.log_run(&walker, SimTime::ZERO, walk_end.as_secs_f64());

    // --- The bench: WiFi + Monsoon --------------------------------------
    let bench_dev = boot_j7_duo(&rng, "bench-j7");
    bench_dev.with_sim(|s| s.set_power_source(PowerSource::MonsoonBypass));
    let mut monsoon = Monsoon::new(rng.derive("monsoon"));
    monsoon.set_powered(true);
    monsoon.set_voltage(4.0).expect("range");
    monsoon.enable_vout().expect("powered");
    browse_for_two_minutes(&bench_dev);
    let bench_end = bench_dev.with_sim(|s| s.now());
    let bench_run = monsoon
        .sample_run_at_rate(&bench_dev, SimTime::ZERO, bench_end.as_secs_f64(), 1000.0)
        .expect("sampling");

    let walk_cdf = Cdf::from_samples(walk_log.samples.values());
    let bench_cdf = Cdf::from_samples(bench_run.samples.values());

    println!("same browsing workload, two measurement setups:\n");
    println!(
        "{:<22} {:>10} {:>10} {:>12}",
        "setup", "median mA", "p95 mA", "mAh/2min"
    );
    println!(
        "{:<22} {:>10.1} {:>10.1} {:>12.3}",
        "walk (cellular+BattOr)",
        walk_cdf.median(),
        walk_cdf.quantile(0.95),
        walk_log.energy.mah()
    );
    println!(
        "{:<22} {:>10.1} {:>10.1} {:>12.3}",
        "bench (WiFi+Monsoon)",
        bench_cdf.median(),
        bench_cdf.quantile(0.95),
        bench_run.energy.mah()
    );
    println!(
        "\ncellular premium: {:.0}% more energy on the move — the measurement\n\
         class the mains-tethered Monsoon bench cannot capture (hence BattOr).",
        (walk_log.energy.mah() / bench_run.energy.mah() - 1.0) * 100.0
    );
    println!(
        "BattOr budget left: {:.1} h battery, {} Msamples flash",
        battor.runtime_left_s() / 3600.0,
        battor.buffer_left() / 1_000_000
    );
}
