#!/usr/bin/env bash
# Pre-merge gate. Run from the repo root before every merge:
#
#   scripts/ci.sh            # format check + lints + tier-1 tests
#   scripts/ci.sh --fix      # apply rustfmt instead of checking
#
# Mirrors the tier-1 verify (`cargo build --release && cargo test -q`)
# with the style gates in front so failures are cheap and early.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt
else
    cargo fmt --check
fi

cargo clippy --workspace --all-targets -- -D warnings

cargo build --release
cargo test -q
