#!/usr/bin/env bash
# Pre-merge gate. Run from the repo root before every merge:
#
#   scripts/ci.sh            # format check + lints + tier-1 tests
#   scripts/ci.sh --fix      # apply rustfmt instead of checking
#
# Mirrors the tier-1 verify (`cargo build --release && cargo test -q`)
# with the style gates in front so failures are cheap and early.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt
else
    cargo fmt --check
fi

cargo clippy --workspace --all-targets -- -D warnings

cargo build --release
cargo test -q

# Golden determinism: the parallel harness must emit byte-identical
# artifacts for any worker count (fig2 + fig3 at jobs=1 vs jobs=4,
# including the merged platform_metrics.json).
cargo test -q -p batterylab-tests --test parallel_determinism

# Sampling fast path: the segment-batched pipeline must stay bit-for-bit
# identical to the per-sample reference path (noise-free and noisy).
cargo test -q -p batterylab-tests --test sampling_fastpath

# Bounded chaos soak (seconds, not minutes): experiment pipelines under
# seeded fault schedules — no lost/duplicated jobs, billing conserved
# across retries, every injected fault journaled. The second invocation
# re-runs one fixed (seed, plan) at a different worker count; the soak
# test asserts the merged telemetry is byte-identical.
cargo run --release -q -p batterylab --bin blab -- chaos --seed 42 --runs 4 --intensity 1.0
cargo test -q -p batterylab-tests --test chaos_soak

# Crash-consistent durability: recover the access server from every WAL
# record prefix, then crash/recover at every operation boundary of a
# chaos scenario — jobs, ledger and the merged telemetry report must
# come back byte-identical. The checkpoint run crashes a sampling
# experiment mid-stream and verifies the resumed aggregates match the
# uninterrupted run bit for bit.
cargo run --release -q -p batterylab --bin blab -- recover --seed 42 --intensity 0.8
cargo run --release -q -p batterylab --bin blab -- checkpoint --seconds 20 --rate 500
cargo test -q -p batterylab-tests --test durable_recovery

# Wall-clock split: evaluation at jobs=1 vs every available core.
# Prints the per-figure table and refreshes BENCH_eval.json.
cargo run --release -q -p batterylab-bench --bin bench_eval
