//! Property-based tests of platform-level invariants: the measurement
//! pipeline's conservation laws, the scheduler's dispatch discipline and
//! the credit ledger's books, under randomised inputs.

use batterylab::automation::Script;
use batterylab::device::{boot_j7_duo, PowerSource};
use batterylab::platform::Platform;
use batterylab::power::Monsoon;
use batterylab::server::{credits::CreditLedger, BuildState, Constraints, ExperimentSpec, Payload};
use batterylab::sim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the workload, the meter's integral tracks the device's
    /// ground-truth trace within calibration error.
    #[test]
    fn meter_tracks_ground_truth(seed in 0u64..1000,
                                 actions in proptest::collection::vec((0.0f64..0.8, 0.0f64..1.0, 1u64..8), 1..6)) {
        let rng = SimRng::new(seed);
        let device = boot_j7_duo(&rng, "prop-dev");
        device.with_sim(|s| {
            s.set_power_source(PowerSource::MonsoonBypass);
            s.set_screen(true);
            for (util, change, secs) in &actions {
                s.run_activity(SimDuration::from_secs(*secs), *util, *change);
            }
        });
        let end = device.with_sim(|s| s.now());
        let truth = device.with_sim(|s| s.current_trace().integral(SimTime::ZERO, end)) / 3600.0;
        let mut monsoon = Monsoon::new(rng.derive("m"));
        monsoon.set_powered(true);
        monsoon.set_voltage(4.0).unwrap();
        monsoon.enable_vout().unwrap();
        let run = monsoon
            .sample_run_at_rate(&device, SimTime::ZERO, end.as_secs_f64(), 500.0)
            .unwrap();
        let rel = (run.energy.mah() - truth).abs() / truth.max(1e-9);
        prop_assert!(rel < 0.02, "meter {} vs truth {truth} ({rel})", run.energy.mah());
    }

    /// Every submitted job reaches a terminal state and none is lost or
    /// run twice, whatever mix of good/bad jobs is queued.
    #[test]
    fn scheduler_conserves_jobs(bad_mask in proptest::collection::vec(any::<bool>(), 1..6)) {
        let mut platform = Platform::paper_testbed(7_000);
        let serial = platform.j7_serial().to_string();
        let mut ids = Vec::new();
        for (i, bad) in bad_mask.iter().enumerate() {
            let script = if *bad {
                Script::browser_workload("com.not.installed", &["https://x.example"], 1)
            } else {
                Script::browser_workload("com.brave.browser", &["https://reuters.com"], 1)
            };
            ids.push((
                platform
                    .server
                    .submit_job(
                        platform.experimenter_token,
                        &format!("prop-{i}"),
                        Constraints::default(),
                        Payload::Experiment(ExperimentSpec::measured(&serial, script)),
                    )
                    .unwrap(),
                *bad,
            ));
        }
        let ran = platform.server.drain();
        prop_assert_eq!(ran.len(), ids.len(), "every job ran exactly once");
        for (id, bad) in ids {
            let build = platform.server.build(platform.experimenter_token, id).unwrap();
            match (&build.state, bad) {
                (BuildState::Failed(_), true) | (BuildState::Succeeded, false) => {}
                other => prop_assert!(false, "job {id:?}: unexpected {other:?}"),
            }
        }
    }

    /// Ledger books always balance: every account's balance equals the
    /// sum of its ledger entries.
    #[test]
    fn ledger_books_balance(ops in proptest::collection::vec((0u8..4, 0.0f64..50.0), 1..40)) {
        let mut ledger = CreditLedger::new();
        let users = ["alice", "bob", "carol"];
        for u in users {
            ledger.open_account(u);
        }
        for (i, (op, amount)) in ops.iter().enumerate() {
            let user = users[i % users.len()];
            let other = users[(i + 1) % users.len()];
            match op {
                0 => ledger.earn_hosting(user, "nodeX", SimDuration::from_secs_f64(amount * 60.0)),
                1 => {
                    let _ = ledger.charge_experiment(user, "j", SimDuration::from_secs_f64(amount * 10.0));
                }
                2 => {
                    let _ = ledger.transfer(user, other, *amount, "prop");
                }
                _ => ledger.open_account(user), // idempotent
            }
        }
        for u in users {
            let from_history: f64 = ledger
                .history()
                .iter()
                .filter(|e| e.user == u)
                .map(|e| e.amount)
                .sum();
            let balance = ledger.balance(u).unwrap();
            prop_assert!((from_history - balance).abs() < 1e-6,
                         "{u}: history {from_history} vs balance {balance}");
        }
    }

    /// Transfers never create or destroy credits.
    #[test]
    fn transfers_conserve_total(amounts in proptest::collection::vec(0.0f64..20.0, 1..20)) {
        let mut ledger = CreditLedger::new();
        ledger.open_account("a");
        ledger.open_account("b");
        let total_before = ledger.balance("a").unwrap() + ledger.balance("b").unwrap();
        for (i, amount) in amounts.iter().enumerate() {
            let (from, to) = if i % 2 == 0 { ("a", "b") } else { ("b", "a") };
            let _ = ledger.transfer(from, to, *amount, "pingpong");
        }
        let total_after = ledger.balance("a").unwrap() + ledger.balance("b").unwrap();
        prop_assert!((total_before - total_after).abs() < 1e-9);
    }
}
