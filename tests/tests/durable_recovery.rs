//! Durability properties: checkpointed sample runs resume bit-identically
//! from any crash instant, damaged checkpoints are rejected with a gap
//! report instead of being integrated, and the access server recovers
//! exactly from its write-ahead log — including a torn tail.

use batterylab::durable::{CheckpointStream, GapKind};
use batterylab::platform::Platform;
use batterylab::power::{ConstantLoad, Monsoon};
use batterylab::sim::{SimRng, SimTime};
use batterylab::telemetry::Registry;
use proptest::prelude::*;

const RATE_HZ: f64 = 1000.0;
const DURATION_S: f64 = 2.0;
const INTERVAL: u64 = 200;

fn armed_monsoon(seed: u64) -> Monsoon {
    let mut m = Monsoon::new(SimRng::new(seed).derive("monsoon"));
    m.set_powered(true);
    m.set_voltage(4.0).unwrap();
    m.enable_vout().unwrap();
    m
}

fn checkpointed_run(seed: u64, stream: &mut CheckpointStream) -> batterylab::power::SampleRun {
    let load = ConstantLoad::new(300.0, 4.0);
    armed_monsoon(seed)
        .sample_run_checkpointed(&load, SimTime::ZERO, DURATION_S, RATE_HZ, stream)
        .expect("fault-free checkpointed run")
}

/// Histogram aggregate of a run's samples, for bit-level comparison.
fn sample_histogram(values: &[f64]) -> batterylab::telemetry::HistogramSnapshot {
    let registry = Registry::new();
    let h = registry.histogram("test.sample_ua");
    for &v in values {
        h.record((v * 1000.0).round() as u64);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash a checkpointed sample run after a randomized number of
    /// sealed segments; the resumed run's samples, mAh, sample count
    /// and histogram must be bit-identical to the uninterrupted run.
    #[test]
    fn resumed_run_matches_uninterrupted_bit_for_bit(
        seed in 0u64..100,
        keep_frac in 0.0f64..1.0,
    ) {
        let mut full_stream = CheckpointStream::new(INTERVAL);
        let full = checkpointed_run(seed, &mut full_stream);

        let mut partial = CheckpointStream::new(INTERVAL);
        let _ = checkpointed_run(seed, &mut partial);
        let keep = (partial.segments.len() as f64 * keep_frac) as usize;
        partial.segments.truncate(keep);
        let resumed = checkpointed_run(seed, &mut partial);

        prop_assert_eq!(full.samples.values(), resumed.samples.values());
        prop_assert_eq!(full.energy.mah().to_bits(), resumed.energy.mah().to_bits());
        prop_assert_eq!(full.energy.samples(), resumed.energy.samples());
        prop_assert_eq!(
            sample_histogram(full.samples.values()),
            sample_histogram(resumed.samples.values())
        );
    }

    /// A damaged salvage — corrupted samples, a truncated tail segment,
    /// a missing middle segment, or a tampered cumulative aggregate —
    /// must be rejected with a gap report naming the offending segment,
    /// never silently integrated into the mAh totals.
    #[test]
    fn damaged_checkpoints_are_rejected_with_a_gap_report(
        seed in 0u64..50,
        victim in 0usize..8,
        mode in 0u8..4,
    ) {
        let mut stream = CheckpointStream::new(INTERVAL);
        let _ = checkpointed_run(seed, &mut stream);
        let mut victim = victim % stream.segments.len();

        let expected_kind = match mode {
            0 => {
                stream.segments[victim].samples[0] += 1.0;
                GapKind::Corrupt
            }
            1 => {
                stream.segments[victim].samples.pop();
                GapKind::Corrupt
            }
            2 => {
                // Removing the last segment is a clean truncation (a
                // valid resume point), so always take a middle one.
                victim = victim.min(stream.segments.len() - 2);
                stream.segments.remove(victim);
                GapKind::Gap
            }
            _ => {
                stream.segments[victim].cumulative.push(1.0, 4.0);
                GapKind::Inconsistent
            }
        };

        let load = ConstantLoad::new(300.0, 4.0);
        let err = armed_monsoon(seed)
            .sample_run_checkpointed(&load, SimTime::ZERO, DURATION_S, RATE_HZ, &mut stream)
            .expect_err("damaged checkpoint must not resume");
        match err {
            batterylab::power::MonsoonError::Checkpoint(report) => {
                prop_assert_eq!(report.kind, expected_kind);
                prop_assert_eq!(report.segment, victim as u64);
            }
            other => prop_assert!(false, "expected checkpoint rejection, got {other:?}"),
        }
    }

    /// Recovering the access server from any WAL prefix succeeds and
    /// yields a server that still serves requests — a crash after any
    /// fsync barrier loses only the unsynced suffix.
    #[test]
    fn any_wal_prefix_recovers_into_a_live_server(seed in 0u64..30, cut in 0u64..64) {
        let (mut platform, wal) = Platform::durable_testbed(seed);
        platform.server.enable_billing();
        platform.server.set_node_owner("node1", "alice");
        let total = wal.record_count();
        let k = 1 + cut % total;
        let recovered = batterylab::server::AccessServer::recover(&wal.prefix(k), &Registry::new());
        prop_assert!(recovered.is_ok(), "prefix {k}/{total}: {:?}", recovered.err());
    }
}

/// A torn tail — a record that never reached its fsync barrier — is
/// truncated on recovery, surfaced in the recovery telemetry, and the
/// recovered server keeps working from the durable prefix.
#[test]
fn torn_wal_tail_is_truncated_and_counted() {
    let (mut platform, wal) = Platform::durable_testbed(91);
    platform.server.enable_billing();
    let durable_records = wal.record_count();

    // Half-written frame: the crash interrupts the disk write mid-record.
    wal.append_unsynced(b"{\"Submitted\":{\"id\":999,\"name\":\"ghost\"}}");
    wal.crash_disk(11);

    let recovery = Registry::new();
    platform
        .crash_and_recover(&wal, &recovery)
        .expect("recovery tolerates a torn tail");
    let report = recovery.snapshot();
    assert_eq!(report.counter("durable.recoveries"), 1);
    assert_eq!(report.counter("durable.replayed_records"), durable_records);
    assert!(
        report.counter("durable.torn_bytes") > 0,
        "torn tail must be surfaced, not silently dropped"
    );

    // The recovered server accepts and completes new work.
    let token = platform.experimenter_token;
    let serial = platform.j7_serial().to_string();
    let id = platform
        .server
        .submit_job(
            token,
            "post-recovery",
            batterylab::server::Constraints::default(),
            batterylab::server::Payload::Experiment(batterylab::server::ExperimentSpec::measured(
                &serial,
                batterylab::automation::Script::browser_workload(
                    "com.android.chrome",
                    &["https://reuters.com"],
                    1,
                ),
            )),
        )
        .expect("recovered server accepts jobs");
    platform.server.drain();
    let build = platform.server.build(token, id).expect("job visible");
    assert!(
        matches!(build.state, batterylab::server::BuildState::Succeeded),
        "post-recovery job must run: {:?}",
        build.state
    );
}
