//! The headline claims of the paper's evaluation, checked end to end at
//! reduced scale. Each assertion is a *shape* the reproduction must
//! preserve, not an absolute number.

use batterylab::eval::fig2::Fig2Scenario;
use batterylab::eval::{fig2, fig3, fig5, sysperf, table2, EvalConfig};
use batterylab::net::VpnLocation;

fn config() -> EvalConfig {
    EvalConfig::quick(401)
}

#[test]
fn fig2_shapes() {
    let f = fig2::run(&EvalConfig {
        fig2_duration_s: 60.0,
        ..config()
    });
    // 1. direct ≈ relay.
    let direct = f.cdf(Fig2Scenario::Direct).median();
    let relay = f.cdf(Fig2Scenario::Relay).median();
    assert!((direct - relay).abs() / direct < 0.02);
    // 2. mirroring moves the median from ~160 to ~220.
    let mirrored = f.cdf(Fig2Scenario::RelayMirroring).median();
    assert!((145.0..180.0).contains(&relay), "plain {relay}");
    assert!((200.0..250.0).contains(&mirrored), "mirrored {mirrored}");
}

#[test]
fn fig3_shapes() {
    let f = fig3::run(&config());
    let ranking = f.ranking();
    assert_eq!(ranking.first().map(String::as_str), Some("Brave"));
    assert_eq!(ranking.last().map(String::as_str), Some("Firefox"));
    // Mirroring: positive, roughly constant extra.
    for browser in ["Brave", "Chrome", "Edge", "Firefox"] {
        assert!(f.bar(browser, true).discharge_mah.mean > f.bar(browser, false).discharge_mah.mean);
    }
}

#[test]
fn fig5_shapes() {
    let f = fig5::run(&config());
    assert!(
        f.line(false).cpu.median() < 0.35,
        "constant ~25% without mirroring"
    );
    assert!(f.line(true).cpu.median() > 0.5, "median rises toward ~75%");
    assert!(
        f.line(true).cpu.fraction_above(0.95) > 0.0,
        "a heavy tail exists"
    );
}

#[test]
fn table2_shape() {
    let t = table2::run(&config());
    // Slowest download: South Africa; fastest: California; highest
    // latency: China — the three facts the paper reads off the table.
    let sa = t.row(VpnLocation::SouthAfrica).down_mbps;
    let ca = t.row(VpnLocation::California).down_mbps;
    let cn = t.row(VpnLocation::China).latency_ms;
    assert!(sa < ca);
    for loc in VpnLocation::ALL {
        assert!(t.row(loc).latency_ms <= cn + 0.001, "{loc}");
    }
}

#[test]
fn sysperf_shapes() {
    let s = sysperf::run(&config());
    assert!(s.controller_cpu_mirroring > s.controller_cpu_plain + 0.25);
    assert!(s.memory_mirroring > s.memory_plain + 0.02);
    assert!(s.memory_mirroring < 0.20);
    assert!((1.2..1.7).contains(&s.latency.mean));
    assert!(s.upload_bytes > 0);
}

#[test]
fn sysperf_telemetry_agrees_with_probes() {
    // §4.2 re-derived from the shared registry must match the piecewise
    // probes byte for byte: same upload traffic, same sample volume.
    let s = sysperf::run(&config());
    assert_eq!(
        s.upload_bytes, s.probe_upload_bytes,
        "registry vs per-session upload accounting"
    );
    assert_eq!(
        s.telemetry.power_samples, s.telemetry.probe_power_samples,
        "registry vs measurement-report sample counts"
    );
    assert_eq!(s.telemetry.measurements_completed, 1);
    assert!(s.telemetry.adb_frames_tx > 0, "workload ran over ADB");
    assert!(
        s.telemetry.encoded_bytes >= s.upload_bytes / 2,
        "encoder produced at least the order of what went on the wire"
    );
}
