//! Measurement-path fidelity: cross-crate invariants tying the Monsoon's
//! readings to the device's ground-truth trace, and the §3.3/§4.1
//! interference effects (USB power, relay resistance, mirroring cost).

use batterylab::device::{boot_j7_duo, PowerSource};
use batterylab::platform::Platform;
use batterylab::power::{ConstantLoad, Monsoon, MonsoonError};
use batterylab::sim::{SimDuration, SimRng, SimTime};

/// The meter's integral must match the device trace's integral to within
/// calibration error — the whole pipeline is only as good as this.
#[test]
fn monsoon_energy_matches_device_ground_truth() {
    let mut platform = Platform::paper_testbed(301);
    let serial = platform.j7_serial().to_string();
    let vp = platform.node1();
    vp.power_monitor().unwrap();
    vp.set_voltage(4.0).unwrap();
    vp.batt_switch(&serial).unwrap();
    vp.start_monitor(&serial).unwrap();
    let device = vp.device_handle(&serial).unwrap();
    device.with_sim(|s| {
        s.set_screen(true);
        s.run_activity(SimDuration::from_secs(30), 0.3, 0.5);
        s.idle(SimDuration::from_secs(5));
    });
    let report = vp.stop_monitor_at_rate(1000.0).unwrap();
    let (from, to) = report.window;
    let truth_mah = device.with_sim(|s| s.current_trace().integral(from, to)) / 3600.0;
    let rel = (report.mah() - truth_mah).abs() / truth_mah;
    assert!(
        rel < 0.01,
        "meter {:.4} mAh vs ground truth {truth_mah:.4} mAh ({:.2}% off)",
        report.mah(),
        rel * 100.0
    );
}

/// §3.3: attaching USB bus power during a measurement corrupts it.
/// The controller refuses to start in that state; if USB appears
/// mid-measurement (which the controller also blocks), readings collapse.
#[test]
fn usb_power_corrupts_the_reading() {
    let rng = SimRng::new(302);
    let device = boot_j7_duo(&rng, "usb-dev");
    device.with_sim(|s| {
        s.set_power_source(PowerSource::MonsoonBypass);
        s.set_screen(true);
        s.run_activity(SimDuration::from_secs(10), 0.3, 0.5);
    });
    let mut monsoon = Monsoon::new(rng.derive("m"));
    monsoon.set_powered(true);
    monsoon.set_voltage(4.0).unwrap();
    monsoon.enable_vout().unwrap();
    let clean = monsoon
        .sample_run_at_rate(&device, SimTime::ZERO, 10.0, 200.0)
        .unwrap();
    device.with_sim(|s| s.set_usb_connected(true));
    let corrupted = monsoon
        .sample_run_at_rate(&device, SimTime::ZERO, 10.0, 200.0)
        .unwrap();
    assert!(
        corrupted.energy.mean_ma() < clean.energy.mean_ma() * 0.25,
        "USB must steal the load: {} vs {}",
        corrupted.energy.mean_ma(),
        clean.energy.mean_ma()
    );
}

/// Fig. 2's premise: the relay adds nothing measurable.
#[test]
fn relay_perturbation_below_2_percent() {
    use batterylab::relay::CircuitSwitch;
    use std::sync::Arc;
    let rng = SimRng::new(303);
    let device = boot_j7_duo(&rng, "relay-dev");
    device.with_sim(|s| {
        s.set_power_source(PowerSource::MonsoonBypass);
        s.set_screen(true);
        s.play_video(SimDuration::from_secs(20));
    });
    let run = |use_relay: bool| {
        let mut monsoon = Monsoon::new(SimRng::new(303).derive("m"));
        monsoon.set_powered(true);
        monsoon.set_voltage(4.0).unwrap();
        monsoon.enable_vout().unwrap();
        if use_relay {
            let switch = CircuitSwitch::new(1);
            switch.attach(0, Arc::new(device.clone())).unwrap();
            switch.engage_bypass(0, SimTime::ZERO).unwrap();
            monsoon
                .sample_run_at_rate(&switch.meter_side(), SimTime::ZERO, 20.0, 500.0)
                .unwrap()
                .energy
                .mean_ma()
        } else {
            monsoon
                .sample_run_at_rate(&device, SimTime::ZERO, 20.0, 500.0)
                .unwrap()
                .energy
                .mean_ma()
        }
    };
    let direct = run(false);
    let relay = run(true);
    let rel = (direct - relay).abs() / direct;
    assert!(rel < 0.02, "direct {direct} vs relay {relay}");
}

/// The over-current protection actually protects: a short trips the run.
#[test]
fn over_current_aborts_the_run() {
    let mut monsoon = Monsoon::new(SimRng::new(304).derive("m"));
    monsoon.set_powered(true);
    monsoon.set_voltage(4.0).unwrap();
    monsoon.enable_vout().unwrap();
    let short = ConstantLoad::new(6500.0, 4.0);
    let err = monsoon
        .sample_run(&short, SimTime::ZERO, 1.0)
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, MonsoonError::OverCurrent { .. }));
}

/// Same seed, same platform, bit-identical measurement — the whole stack
/// is deterministic.
#[test]
fn full_pipeline_determinism() {
    let run = || {
        let mut platform = Platform::paper_testbed(305);
        let serial = platform.j7_serial().to_string();
        let vp = platform.node1();
        vp.power_monitor().unwrap();
        vp.batt_switch(&serial).unwrap();
        vp.start_monitor(&serial).unwrap();
        let device = vp.device_handle(&serial).unwrap();
        device.with_sim(|s| {
            s.set_screen(true);
            s.play_video(SimDuration::from_secs(15));
        });
        let report = vp.stop_monitor_at_rate(500.0).unwrap();
        (report.mah(), report.samples.values().to_vec())
    };
    let (mah_a, samples_a) = run();
    let (mah_b, samples_b) = run();
    assert_eq!(mah_a.to_bits(), mah_b.to_bits());
    assert_eq!(samples_a, samples_b);
}

/// Battery accounting: on battery power the pack drains by exactly the
/// trace integral; on the bypass it doesn't drain at all.
#[test]
fn battery_vs_bypass_accounting() {
    let rng = SimRng::new(306);
    let device = boot_j7_duo(&rng, "batt-dev");
    let full = device.with_sim(|s| s.battery().charge_mah());
    device.with_sim(|s| {
        s.set_screen(true);
        s.run_activity(SimDuration::from_secs(60), 0.4, 0.5);
    });
    let after_battery = device.with_sim(|s| s.battery().charge_mah());
    assert!(after_battery < full);
    device.with_sim(|s| s.set_power_source(PowerSource::MonsoonBypass));
    device.with_sim(|s| s.run_activity(SimDuration::from_secs(60), 0.4, 0.5));
    assert_eq!(
        device.with_sim(|s| s.battery().charge_mah()),
        after_battery,
        "bypass must not drain the pack"
    );
}
