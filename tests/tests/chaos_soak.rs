//! Chaos soak: full experiment pipelines under randomized-but-seeded
//! fault schedules. The harness itself (`batterylab::chaos`) asserts the
//! robustness invariants per run — no lost or duplicated jobs, credit
//! accounting conserved across retries, every injected fault journaled.
//! This test drives it across seeds and checks the cross-run properties:
//! determinism at any worker count and fault/fault-free accounting parity.

use batterylab::chaos::{run_chaos, ChaosConfig};

/// A small seed sweep at full intensity: the invariants must hold on
/// every schedule the plan generator can produce.
#[test]
fn soak_holds_invariants_across_seeds() {
    for seed in [1, 17, 42] {
        let report = run_chaos(&ChaosConfig {
            seed,
            runs: 2,
            intensity: 1.0,
            jobs: 1,
        });
        assert!(report.passed(), "seed {seed}: {:?}", report.violations);
        assert_eq!(report.jobs_submitted, 6, "seed {seed}");
        assert_eq!(
            report.jobs_succeeded + report.jobs_failed,
            report.jobs_submitted,
            "seed {seed}: every job terminal exactly once"
        );
    }
}

/// Same (seed, plan) ⇒ byte-identical merged telemetry at any `--jobs`
/// count: the chaos schedule, retries and supervision must all derive
/// from the sim clock and seeded streams, never from worker scheduling.
#[test]
fn soak_is_deterministic_at_any_job_count() {
    let base = ChaosConfig {
        seed: 23,
        runs: 3,
        intensity: 0.9,
        jobs: 1,
    };
    let serial = run_chaos(&base);
    let parallel = run_chaos(&ChaosConfig { jobs: 4, ..base });
    assert!(serial.passed(), "{:?}", serial.violations);
    assert!(parallel.passed(), "{:?}", parallel.violations);
    assert_eq!(serial.faults_injected, parallel.faults_injected);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "merged report must be byte-identical regardless of worker count"
    );
}

/// Server crashes drawn by the chaos schedule kill the access server
/// mid-drain and rebuild it from the write-ahead log; every invariant
/// (no lost/duplicated jobs, conserved ledger, journaled faults) must
/// keep holding, and the merged report must stay byte-identical at any
/// worker count.
#[test]
fn server_crashes_hold_invariants_at_any_job_count() {
    let base = ChaosConfig {
        seed: 13,
        runs: 3,
        intensity: 1.0,
        jobs: 1,
    };
    let serial = run_chaos(&base);
    assert!(serial.passed(), "{:?}", serial.violations);
    assert!(
        serial.server_crashes > 0,
        "chaos schedule never drew a server crash"
    );
    assert_eq!(
        serial.jobs_succeeded + serial.jobs_failed,
        serial.jobs_submitted,
        "every job terminal exactly once across crashes"
    );
    let parallel = run_chaos(&ChaosConfig { jobs: 4, ..base });
    assert!(parallel.passed(), "{:?}", parallel.violations);
    assert_eq!(serial.server_crashes, parallel.server_crashes);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "crash/recovery cycles must not break worker-count determinism"
    );
}

/// An injected fault schedule must not change what a job is billed:
/// failed attempts are never charged, so the fault-free and faulted runs
/// both charge exactly the successful device time they report.
#[test]
fn faults_do_not_corrupt_energy_accounting() {
    let quiet = run_chaos(&ChaosConfig {
        seed: 5,
        runs: 1,
        intensity: 0.0,
        jobs: 1,
    });
    let noisy = run_chaos(&ChaosConfig {
        seed: 5,
        runs: 1,
        intensity: 1.0,
        jobs: 1,
    });
    // The per-run billing invariant (charges == successful device time)
    // is checked inside the harness for both; here we confirm the quiet
    // run saw no faults and everything succeeded.
    assert!(quiet.passed(), "{:?}", quiet.violations);
    assert!(noisy.passed(), "{:?}", noisy.violations);
    assert_eq!(quiet.faults_injected, 0);
    assert_eq!(quiet.jobs_succeeded, quiet.jobs_submitted);
}
