//! Table 1 API-surface test: every row of the paper's API exists on the
//! controller and behaves as documented, in the order a §4.2 experiment
//! uses them.
//!
//! | API | parameters |
//! |---|---|
//! | `list_devices` | — |
//! | `device_mirroring` | device_id |
//! | `power_monitor` | — |
//! | `set_voltage` | voltage_val |
//! | `start_monitor` | device_id, duration |
//! | `stop_monitor` | — |
//! | `batt_switch` | device_id |
//! | `execute_adb` | device_id, command |

use batterylab::platform::Platform;
use batterylab::power::SocketState;
use batterylab::relay::ChannelRoute;
use batterylab::sim::SimDuration;

#[test]
fn table1_api_complete_walkthrough() {
    let mut platform = Platform::paper_testbed(201);
    let serial = platform.j7_serial().to_string();
    let vp = platform.node1();

    // list_devices
    let devices = vp.list_devices();
    assert_eq!(devices, vec![serial.clone()]);

    // power_monitor (toggle on)
    assert_eq!(vp.power_monitor().unwrap(), SocketState::On);

    // set_voltage
    vp.set_voltage(4.0).unwrap();
    assert!(vp.set_voltage(0.1).is_err(), "out of the HV's range");

    // batt_switch (battery -> bypass)
    assert_eq!(vp.batt_switch(&serial).unwrap(), ChannelRoute::Bypass);

    // device_mirroring (toggle on)
    assert!(vp.device_mirroring(&serial).unwrap());

    // start_monitor / workload / stop_monitor
    vp.start_monitor(&serial).unwrap();
    let device = vp.device_handle(&serial).unwrap();
    device.with_sim(|s| {
        s.set_screen(true);
        s.play_video(SimDuration::from_secs(10));
    });
    let report = vp.stop_monitor_at_rate(500.0).unwrap();
    assert!(report.mah() > 0.0);
    // Mirroring was on: the median reflects the encoder cost.
    assert!(
        report.cdf().median() > 195.0,
        "median {}",
        report.cdf().median()
    );

    // execute_adb
    let sdk = vp
        .execute_adb(&serial, "getprop ro.build.version.sdk")
        .unwrap();
    assert_eq!(sdk.trim(), "26");

    // device_mirroring (toggle off), batt_switch back, power off.
    assert!(!vp.device_mirroring(&serial).unwrap());
    assert_eq!(vp.batt_switch(&serial).unwrap(), ChannelRoute::Battery);
    assert_eq!(vp.power_monitor().unwrap(), SocketState::Off);
}

#[test]
fn api_errors_are_typed_not_panics() {
    let mut platform = Platform::paper_testbed(202);
    let vp = platform.node1();
    assert!(vp.batt_switch("ghost").is_err());
    assert!(vp.execute_adb("ghost", "id").is_err());
    assert!(vp.device_mirroring("ghost").is_err());
    assert!(vp.stop_monitor().is_err(), "no measurement running");
    assert!(vp.start_monitor("j7duo-0001").is_err(), "meter off");
}

#[test]
fn gui_toolbar_exposes_the_api_subset() {
    use batterylab::controller::{GuiSession, ToolbarAction};
    let mut platform = Platform::paper_testbed(203);
    let serial = platform.j7_serial().to_string();
    let vp = platform.node1();
    let mut gui = GuiSession::new(&serial, true);
    // Fig. 1(c)'s toolbar drives the same backend.
    for action in [
        ToolbarAction::ListDevices,
        ToolbarAction::PowerMonitor,
        ToolbarAction::SetVoltage(4.0),
        ToolbarAction::BattSwitch,
        ToolbarAction::StartMonitor,
    ] {
        gui.click_toolbar(vp, action).unwrap();
    }
    vp.device_handle(&serial)
        .unwrap()
        .with_sim(|s| s.idle(SimDuration::from_secs(2)));
    let out = gui.click_toolbar(vp, ToolbarAction::StopMonitor).unwrap();
    assert!(out.starts_with("discharge_mah="), "{out}");
}
