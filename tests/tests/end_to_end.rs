//! End-to-end platform tests: the full path an experimenter takes —
//! console login, job submission, queue dispatch to a vantage point,
//! execution over ADB-WiFi with power capture, artifact retrieval — plus
//! multi-node enrolment and maintenance.

use batterylab::automation::Script;
use batterylab::controller::{VantageConfig, VantagePoint};
use batterylab::device::boot_j7_duo;
use batterylab::net::VpnLocation;
use batterylab::platform::{Platform, NODE_PORTS};
use batterylab::server::{
    AuthError, BuildState, Constraints, ExperimentSpec, Payload, Role, ServerError,
};
use batterylab::sim::{SimDuration, SimRng, SimTime};

fn brave_script() -> Script {
    Script::browser_workload("com.brave.browser", &["https://news.bbc.co.uk"], 2)
}

#[test]
fn experimenter_pipeline_end_to_end() {
    let mut platform = Platform::paper_testbed(101);
    let serial = platform.j7_serial().to_string();
    let token = platform.experimenter_token;

    let id = platform
        .server
        .submit_job(
            token,
            "energy-smoke",
            Constraints {
                device: Some(serial.clone()),
                ..Default::default()
            },
            Payload::Experiment(ExperimentSpec::measured(&serial, brave_script())),
        )
        .expect("experimenter submits");

    assert_eq!(platform.server.tick(), Some(id));

    let build = platform.server.build(token, id).expect("visible to owner");
    assert_eq!(build.state, BuildState::Succeeded);
    assert_eq!(build.node.as_deref(), Some("node1"));
    let summary = build.summary.as_ref().expect("summary recorded");
    assert!(summary["discharge_mah"].as_f64().unwrap() > 0.1);
    assert!(summary["duration_s"].as_f64().unwrap() > 10.0);

    // Artifacts: power summary parses as JSON, logcat has the launch line.
    let power = build
        .artifacts
        .iter()
        .find(|a| a.name == "power_summary.json")
        .expect("power artifact");
    let parsed: serde_json::Value = serde_json::from_str(&power.content).expect("valid JSON");
    assert!(parsed["samples"].as_u64().unwrap() > 1000);
    let logcat = build
        .artifacts
        .iter()
        .find(|a| a.name == "logcat.txt")
        .expect("logcat artifact");
    assert!(
        logcat.content.contains("Displayed com.brave.browser"),
        "{}",
        logcat.content
    );
}

#[test]
fn unauthorized_access_is_refused_everywhere() {
    let mut platform = Platform::paper_testbed(102);
    // Tester role.
    platform
        .server
        .add_user(platform.admin_token, "turk", "pw", Role::Tester)
        .unwrap();
    let turk = platform.server.login("turk", "pw", true).unwrap().token;
    assert!(matches!(
        platform.server.submit_job(
            turk,
            "x",
            Constraints::default(),
            Payload::Custom(Box::new(|_| Err("no".into())))
        ),
        Err(ServerError::Auth(AuthError::Forbidden { .. }))
    ));
    // HTTP refused.
    assert!(matches!(
        platform.server.login("turk", "pw", false),
        Err(ServerError::Auth(AuthError::HttpsRequired))
    ));
    // Bad token.
    assert!(matches!(
        platform.server.build(999_999, batterylab::server::JobId(1)),
        Err(ServerError::Auth(AuthError::BadSession))
    ));
}

#[test]
fn second_node_scales_the_platform() {
    let mut platform = Platform::paper_testbed(103);
    let rng = SimRng::new(103).derive("node2");
    let mut node2 = VantagePoint::new(
        VantageConfig {
            name: "node2".to_string(),
            ..VantageConfig::imperial_college()
        },
        rng.derive("vp"),
    );
    let d2 = boot_j7_duo(&rng, "node2-dev");
    d2.install_package("com.brave.browser");
    node2.add_device(d2);
    platform
        .server
        .enroll_node(
            platform.admin_token,
            node2,
            "130.192.1.2",
            "hk:node2",
            &NODE_PORTS,
            SimTime::ZERO,
        )
        .expect("enrols");
    assert_eq!(platform.server.node_names(), vec!["node1", "node2"]);

    // A node-constrained job lands on node2.
    let id = platform
        .server
        .submit_job(
            platform.experimenter_token,
            "node2-job",
            Constraints {
                node: Some("node2".to_string()),
                ..Default::default()
            },
            Payload::Experiment(ExperimentSpec::measured("node2-dev", brave_script())),
        )
        .unwrap();
    platform.server.tick().unwrap();
    let build = platform
        .server
        .build(platform.experimenter_token, id)
        .unwrap();
    assert_eq!(build.node.as_deref(), Some("node2"));
    assert_eq!(build.state, BuildState::Succeeded);
}

#[test]
fn vpn_constrained_job_runs_through_tunnel() {
    let mut platform = Platform::paper_testbed(104);
    let serial = platform.j7_serial().to_string();
    let mut spec = ExperimentSpec::measured(&serial, brave_script());
    spec.vpn = Some(VpnLocation::Japan);
    let id = platform
        .server
        .submit_job(
            platform.experimenter_token,
            "tokyo-run",
            Constraints {
                location: Some(VpnLocation::Japan),
                ..Default::default()
            },
            Payload::Experiment(spec),
        )
        .unwrap();
    platform.server.tick().unwrap();
    let build = platform
        .server
        .build(platform.experimenter_token, id)
        .unwrap();
    assert_eq!(build.state, BuildState::Succeeded);
    assert_eq!(
        build.summary.as_ref().unwrap()["vpn"],
        serde_json::json!("Japan")
    );
    // Tunnel is down again after the job.
    assert!(platform.node1().vpn_location().is_none());
}

#[test]
fn maintenance_keeps_the_fleet_safe() {
    let mut platform = Platform::paper_testbed(105);
    // Sloppy state: meter left on.
    platform.node1().power_monitor().unwrap();
    let report = platform
        .server
        .run_maintenance(SimTime::from_secs(70 * 24 * 3600));
    assert!(report.cert_renewed, "90-day cert is 70 days old");
    assert_eq!(report.meters_powered_off, vec!["node1".to_string()]);
    assert!(
        platform.server.registry().stale_cert_nodes().is_empty(),
        "new cert deployed everywhere"
    );
}

#[test]
fn mirrored_and_plain_jobs_share_a_device_sequentially() {
    let mut platform = Platform::paper_testbed(106);
    let serial = platform.j7_serial().to_string();
    let mut ids = Vec::new();
    for mirroring in [false, true] {
        let mut spec = ExperimentSpec::measured(&serial, brave_script());
        spec.mirroring = mirroring;
        ids.push(
            platform
                .server
                .submit_job(
                    platform.experimenter_token,
                    if mirroring { "mirrored" } else { "plain" },
                    Constraints::default(),
                    Payload::Experiment(spec),
                )
                .unwrap(),
        );
    }
    let ran = platform.server.drain();
    assert_eq!(ran, ids, "FIFO order");
    let plain = platform
        .server
        .build(platform.experimenter_token, ids[0])
        .unwrap()
        .summary
        .clone()
        .unwrap();
    let mirrored = platform
        .server
        .build(platform.experimenter_token, ids[1])
        .unwrap()
        .summary
        .clone()
        .unwrap();
    // Mirroring costs energy — visible even through the whole pipeline.
    assert!(mirrored["discharge_mah"].as_f64().unwrap() > plain["discharge_mah"].as_f64().unwrap());
}

#[test]
fn device_time_advances_monotonically_across_jobs() {
    let mut platform = Platform::paper_testbed(107);
    let serial = platform.j7_serial().to_string();
    let device = platform.j7();
    let t0 = device.with_sim(|s| s.now());
    for _ in 0..3 {
        platform
            .server
            .submit_job(
                platform.experimenter_token,
                "seq",
                Constraints::default(),
                Payload::Experiment(ExperimentSpec::measured(&serial, brave_script())),
            )
            .unwrap();
    }
    platform.server.drain();
    let t1 = device.with_sim(|s| s.now());
    assert!(
        t1 > t0 + SimDuration::from_secs(25),
        "three jobs of ~10 s each"
    );
}
