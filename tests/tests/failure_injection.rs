//! Failure injection across the stack: flaky power sockets, lost
//! transports mid-job, declined ADB keys, stale certificates, depleted
//! batteries — each must surface as a typed error (or be absorbed by the
//! documented retry), never as a hang or a silent wrong answer.

use batterylab::adb::{AdbKey, AdbLink, HostError, TransportKind};
use batterylab::automation::Script;
use batterylab::device::{AndroidDevice, DeviceSpec};
use batterylab::platform::Platform;
use batterylab::server::{BuildState, Constraints, ExperimentSpec, Payload};
use batterylab::sim::{SimDuration, SimRng, SimTime};

#[test]
fn flaky_power_socket_is_retried() {
    // The controller retries the Meross `togglex` on LAN hiccups.
    use batterylab::faults::{FaultInjector, FaultPlan};
    use batterylab::power::PowerSocket;
    let mut socket = PowerSocket::new();
    let plan = FaultPlan::new().socket_unreachable_next(socket.fault_site(), 2);
    let injector = FaultInjector::new(&plan, 500);
    let site = socket.fault_site().to_string();
    socket.set_faults(&injector, &site);
    // Two failures then success — the controller's 3-retry loop covers it.
    let mut attempts = 0;
    let state = loop {
        attempts += 1;
        match socket.togglex(SimTime::ZERO, true) {
            Ok(s) => break s,
            Err(_) if attempts < 4 => continue,
            Err(e) => panic!("retries exhausted: {e}"),
        }
    };
    assert_eq!(state, batterylab::power::SocketState::On);
    assert_eq!(attempts, 3);
}

#[test]
fn declined_adb_key_fails_cleanly() {
    // A device whose owner never tapped "always allow".
    let device = AndroidDevice::new(
        DeviceSpec::samsung_j7_duo(),
        "paranoid-dev",
        SimRng::new(501).derive("d"),
        false, // decline new keys
    );
    let mut link = AdbLink::new(device, TransportKind::WiFi, AdbKey::generate("h", 501));
    assert_eq!(link.connect().unwrap_err(), HostError::AuthRejected);
}

#[test]
fn job_on_missing_package_fails_with_record() {
    let mut platform = Platform::paper_testbed(502);
    let serial = platform.j7_serial().to_string();
    let id = platform
        .server
        .submit_job(
            platform.experimenter_token,
            "bad-package",
            Constraints::default(),
            Payload::Experiment(ExperimentSpec::measured(
                &serial,
                Script::browser_workload("com.not.installed", &["https://x.example"], 1),
            )),
        )
        .unwrap();
    platform.server.tick().unwrap();
    let build = platform
        .server
        .build(platform.experimenter_token, id)
        .unwrap();
    match &build.state {
        BuildState::Failed(msg) => assert!(msg.contains("automation"), "{msg}"),
        other => panic!("expected failure, got {other:?}"),
    }
    // The bench is left safe: meter off, no measurement dangling.
    let vp = platform.node1();
    assert!(vp.start_monitor(&serial).is_err(), "meter should be off");
}

#[test]
fn failed_job_does_not_wedge_the_queue() {
    let mut platform = Platform::paper_testbed(503);
    let serial = platform.j7_serial().to_string();
    let bad = platform
        .server
        .submit_job(
            platform.experimenter_token,
            "fails",
            Constraints::default(),
            Payload::Custom(Box::new(|_| Err("synthetic failure".into()))),
        )
        .unwrap();
    let good = platform
        .server
        .submit_job(
            platform.experimenter_token,
            "succeeds",
            Constraints::default(),
            Payload::Experiment(ExperimentSpec::measured(
                &serial,
                Script::browser_workload("com.brave.browser", &["https://reuters.com"], 1),
            )),
        )
        .unwrap();
    platform.server.drain();
    assert!(matches!(
        platform
            .server
            .build(platform.experimenter_token, bad)
            .unwrap()
            .state,
        BuildState::Failed(_)
    ));
    assert_eq!(
        platform
            .server
            .build(platform.experimenter_token, good)
            .unwrap()
            .state,
        BuildState::Succeeded
    );
}

#[test]
fn usb_guard_is_enforced_by_the_controller() {
    let mut platform = Platform::paper_testbed(504);
    let serial = platform.j7_serial().to_string();
    let vp = platform.node1();
    vp.power_monitor().unwrap();
    vp.batt_switch(&serial).unwrap();
    vp.usb_port_power(&serial, true).unwrap();
    assert!(vp.start_monitor(&serial).is_err());
    vp.usb_port_power(&serial, false).unwrap();
    vp.start_monitor(&serial).unwrap();
    assert!(vp.usb_port_power(&serial, true).is_err());
}

#[test]
fn battery_depletion_is_observable_via_dumpsys() {
    let device = AndroidDevice::new(
        DeviceSpec::samsung_j7_duo(),
        "drain-dev",
        SimRng::new(505).derive("d"),
        true,
    );
    // Hammer the device on battery power for hours of virtual time.
    device.with_sim(|s| {
        s.set_screen(true);
        for _ in 0..60 {
            s.run_activity(SimDuration::from_secs(600), 0.8, 0.8);
        }
    });
    use batterylab::adb::DeviceServices;
    let mut d = device.clone();
    let out = String::from_utf8(d.exec("shell:dumpsys battery").unwrap()).unwrap();
    let level: u8 = out
        .lines()
        .find_map(|l| l.trim().strip_prefix("level: "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        level < 100,
        "10 virtual hours at 80% CPU must drain: {level}%"
    );
}

#[test]
fn stale_certificates_are_detected_and_healed() {
    let mut platform = Platform::paper_testbed(506);
    // Fast-forward past the renewal margin.
    let later = SimTime::from_secs(75 * 24 * 3600);
    assert!(platform
        .server
        .registry()
        .certificate()
        .needs_renewal(later));
    let report = platform.server.run_maintenance(later);
    assert!(report.cert_renewed);
    assert!(platform.server.registry().stale_cert_nodes().is_empty());
    // And the renewed cert is fresh for another 60+ days.
    assert!(!platform
        .server
        .registry()
        .certificate()
        .needs_renewal(later + SimDuration::from_secs(30 * 24 * 3600)));
}

#[test]
fn socket_retries_show_up_in_telemetry() {
    use batterylab::faults::{scoped_site, site, FaultInjector, FaultPlan};
    let mut platform = Platform::paper_testbed(508);
    let plan =
        FaultPlan::new().socket_unreachable_next(&scoped_site("node1", site::POWER_SOCKET), 2);
    let injector = FaultInjector::new(&plan, 508);
    let vp = platform.node1();
    vp.attach_faults(&injector);
    // The controller's retry loop absorbs the hiccups…
    vp.power_monitor().unwrap();
    // …and the telemetry records how hard it had to work.
    let report = platform.metrics();
    assert_eq!(report.counter("node1.controller.socket_retries"), 2);
}

#[test]
fn transport_flap_increments_reconnect_counter() {
    use batterylab::telemetry::Registry;
    let registry = Registry::new();
    let device = AndroidDevice::new(
        DeviceSpec::samsung_j7_duo(),
        "flap-tel",
        SimRng::new(509).derive("d"),
        true,
    );
    let mut link = AdbLink::new(device, TransportKind::WiFi, AdbKey::generate("h", 509))
        .with_telemetry(&registry);
    link.connect().unwrap();
    link.disconnect_transport();
    link.reconnect_transport();
    link.connect().unwrap();
    let report = registry.snapshot();
    assert_eq!(report.counter("adb.reconnects"), 1);
    assert_eq!(report.counter("adb.connects"), 2);
}

#[test]
fn scheduler_retries_are_counted() {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    let mut platform = Platform::paper_testbed(510);
    let failures_left = Arc::new(AtomicU32::new(2));
    let counter = Arc::clone(&failures_left);
    let id = platform
        .server
        .submit_job(
            platform.experimenter_token,
            "flaky",
            Constraints {
                max_retries: 3,
                ..Default::default()
            },
            Payload::Custom(Box::new(move |vp| {
                if counter
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    return Err("transient bench fault".into());
                }
                let now = vp
                    .device_handle("j7duo-0001")
                    .map(|d| d.with_sim(|s| s.now()))
                    .unwrap_or(SimTime::ZERO);
                Ok(batterylab::server::JobOutcome {
                    summary: serde_json::json!({"ok": true}),
                    artifacts: vec![],
                    finished_at: now,
                })
            })),
        )
        .unwrap();
    platform.server.drain();
    assert_eq!(
        platform
            .server
            .build(platform.experimenter_token, id)
            .unwrap()
            .state,
        BuildState::Succeeded
    );
    let report = platform.metrics();
    assert_eq!(report.counter("scheduler.retries"), 2);
    assert_eq!(report.counter("scheduler.jobs_succeeded"), 1);
    assert_eq!(report.counter("scheduler.jobs_failed"), 0);
}

#[test]
fn ssh_and_viewer_auth_failures_are_counted() {
    use batterylab::server::{SshClient, SshServer};
    use batterylab::telemetry::Registry;
    let registry = Registry::new();
    let mut sshd =
        SshServer::new("hk:node", vec!["fp:trusted".to_string()]).with_telemetry(&registry);
    let intruder = SshClient::new("fp:intruder");
    assert!(intruder.connect("node", &mut sshd).is_err());
    // A wrong noVNC password on a live mirror session, same registry.
    let mut platform = Platform::paper_testbed(511);
    let serial = platform.j7_serial().to_string();
    let vp = platform.node1();
    vp.device_mirroring(&serial).unwrap();
    assert!(vp.attach_viewer(&serial, "wrong-password").is_err());
    assert_eq!(registry.snapshot().counter("ssh.auth_failures"), 1);
    assert_eq!(platform.metrics().counter("mirror.auth_failures"), 1);
}

#[test]
fn transport_reconnect_requires_rehandshake_but_recovers() {
    let device = AndroidDevice::new(
        DeviceSpec::samsung_j7_duo(),
        "flap-dev",
        SimRng::new(507).derive("d"),
        true,
    );
    let mut link = AdbLink::new(device, TransportKind::WiFi, AdbKey::generate("h", 507));
    link.connect().unwrap();
    link.shell("echo before").unwrap();
    link.disconnect_transport();
    assert!(link.shell("echo during").is_err());
    link.reconnect_transport();
    // A fresh handshake is needed — then everything works again.
    link.connect().unwrap();
    assert_eq!(link.shell("echo after").unwrap(), "after\n");
}
