//! The §5 future-work features, exercised end to end: iOS devices
//! (XCTest + Bluetooth keyboard + AirPlay, no ADB), the credit system,
//! crowdsourced tester recruitment, and BattOr-style mobile measurement.

use batterylab::automation::{
    Action, AutomationBackend, BluetoothKeyboardBackend, Script, ScrollDir, XcTestBackend,
};
use batterylab::device::iphone_7;
use batterylab::mirror::{AirPlayConfig, AirPlayMirror};
use batterylab::platform::Platform;
use batterylab::power::{BattOr, Monsoon};
use batterylab::server::{Constraints, ExperimentSpec, Marketplace, Payload, Recruitment};
use batterylab::sim::{SimDuration, SimRng, SimTime};

#[test]
fn ios_device_full_session_without_adb() {
    let rng = SimRng::new(601);
    let iphone = iphone_7(&rng, "00008030-001A");
    iphone.install_app("com.brave.ios.browser");

    // AirPlay mirroring + BT keyboard: the §3.2 iOS combination.
    let mut mirror = AirPlayMirror::new(iphone.clone(), AirPlayConfig::default());
    mirror.start().unwrap();
    let mut keyboard = BluetoothKeyboardBackend::pair(iphone.clone());
    let script = Script::new("ios-browse")
        .then(Action::LaunchApp("com.brave.ios.browser".into()))
        .then(Action::EnterUrl("https://news.bbc.co.uk".into()))
        .then(Action::Wait(SimDuration::from_secs(6)))
        .then(Action::Scroll(ScrollDir::Down))
        .then(Action::Scroll(ScrollDir::Up));
    keyboard.run_script(&script).unwrap();

    // Measure it with the Monsoon like any other load.
    let mut monsoon = Monsoon::new(rng.derive("monsoon"));
    monsoon.set_powered(true);
    monsoon.set_voltage(4.0).unwrap();
    monsoon.enable_vout().unwrap();
    let end = iphone.with_sim(|s| s.now());
    let run = monsoon
        .sample_run_at_rate(&iphone, SimTime::ZERO, end.as_secs_f64(), 200.0)
        .unwrap();
    assert!(run.energy.mah() > 0.0);

    let streamed = mirror.stop().unwrap();
    assert!(streamed > 0, "AirPlay produced a stream");
    assert_eq!(
        iphone.foreground().as_deref(),
        Some("com.brave.ios.browser")
    );
}

#[test]
fn xctest_drives_only_its_bundle() {
    let rng = SimRng::new(602);
    let iphone = iphone_7(&rng, "00008030-002B");
    let mut xc = XcTestBackend::install(iphone.clone(), "org.mozilla.ios.Firefox", true).unwrap();
    xc.perform(&Action::LaunchApp("org.mozilla.ios.Firefox".into()))
        .unwrap();
    assert!(xc
        .perform(&Action::LaunchApp("com.other.app".into()))
        .is_err());
    assert!(xc.measurement_safe());
    assert!(!xc.supports_mirroring());
    // No-source install fails, like Android's UiTest.
    assert!(XcTestBackend::install(iphone, "com.android.chrome", false).is_err());
}

#[test]
fn credit_system_gates_and_charges() {
    let mut platform = Platform::paper_testbed(603);
    platform.server.enable_billing();
    platform.server.set_node_owner("node1", "imperial");
    let serial = platform.j7_serial().to_string();

    // Alice starts with the welcome grant.
    let _id = platform
        .server
        .submit_job(
            platform.experimenter_token,
            "paid-run",
            Constraints::default(),
            Payload::Experiment(ExperimentSpec::measured(
                &serial,
                Script::browser_workload("com.brave.browser", &["https://reuters.com"], 2),
            )),
        )
        .expect("welcome grant covers a short job");
    platform.server.tick().unwrap();

    let balance = platform.server.ledger().unwrap().balance("alice").unwrap();
    assert!(
        balance < batterylab::server::credits::WELCOME_GRANT,
        "the run was charged: {balance}"
    );

    // The node owner accrues hosting credits at maintenance time.
    platform.server.run_maintenance(SimTime::from_secs(3600));
    let imperial = platform
        .server
        .ledger()
        .unwrap()
        .balance("imperial")
        .unwrap();
    assert!(
        imperial > batterylab::server::credits::WELCOME_GRANT,
        "an hour of hosting earned credits: {imperial}"
    );
}

#[test]
fn broke_experimenter_is_refused() {
    let mut platform = Platform::paper_testbed(604);
    platform.server.enable_billing();
    // Drain alice's account.
    platform.server.ledger_mut().unwrap().open_account("alice");
    platform
        .server
        .ledger_mut()
        .unwrap()
        .charge_experiment("alice", "sink", SimDuration::from_secs(100 * 60))
        .unwrap();
    let err = platform
        .server
        .submit_job(
            platform.experimenter_token,
            "cannot-afford",
            Constraints::default(),
            Payload::Custom(Box::new(|_| Err("never runs".into()))),
        )
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, batterylab::server::ServerError::Credits(_)),
        "{err}"
    );
}

#[test]
fn recruit_pay_tester_via_mturk() {
    let mut platform = Platform::paper_testbed(605);
    platform.server.enable_billing();
    platform.server.ledger_mut().unwrap().open_account("alice");

    let mut recruitment = Recruitment::new();
    let task_id = recruitment
        .post(
            platform.server.ledger().unwrap(),
            "alice",
            Marketplace::MechanicalTurk,
            "open the shopping app and search for three items",
            "node1",
            platform.j7_serial(),
            SimDuration::from_secs(900),
            4.0,
        )
        .unwrap();

    // A worker accepts: account + session URL.
    let url = recruitment
        .accept(platform.server.auth_mut(), task_id, "AMZN-worker-77")
        .unwrap();
    assert!(url.contains("node1.batterylab.dev"));
    // Worker can log in as a Tester (HTTPS only).
    let session = platform
        .server
        .login("AMZN-worker-77", &format!("task-{task_id}-pw"), true)
        .unwrap();
    assert_eq!(session.role, batterylab::server::Role::Tester);

    recruitment.submit(task_id).unwrap();
    recruitment
        .approve(platform.server.ledger_mut().unwrap(), task_id)
        .unwrap();
    let worker_balance = platform
        .server
        .ledger()
        .unwrap()
        .balance("AMZN-worker-77")
        .unwrap();
    assert!(worker_balance >= 4.0, "paid: {worker_balance}");
}

#[test]
fn battor_measures_a_cellular_walk() {
    // Mobility support: the device walks on cellular; BattOr rides along.
    use batterylab::device::{boot_j7_duo, DataPath};
    use batterylab::net::Direction;
    let rng = SimRng::new(606);
    let device = boot_j7_duo(&rng, "walker");
    device.with_sim(|s| {
        s.set_data_path(DataPath::Cellular);
        s.set_screen(true);
    });
    let mut battor = BattOr::new(rng.derive("battor"));
    // Walk: browse in bursts over cellular for 2 minutes.
    device.with_sim(|s| {
        for _ in 0..4 {
            s.transfer(1_500_000, Direction::Down, 0.2);
            s.run_activity(SimDuration::from_secs(10), 0.18, 0.4);
        }
    });
    let end = device.with_sim(|s| s.now());
    let log = battor.log_run(&device, SimTime::ZERO, end.as_secs_f64());
    assert!(log.truncated.is_none());
    // Cellular bursts show in the high quantiles.
    let cdf = batterylab::stats::Cdf::from_samples(log.samples.values());
    assert!(cdf.quantile(0.95) > cdf.median() + 100.0, "bursts visible");
    // The whole log fits comfortably in flash and battery budget.
    assert!(battor.buffer_left() > 0);
    assert!(battor.runtime_left_s() > 0.0);
}
