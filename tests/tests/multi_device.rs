//! Multi-device vantage points: the circuit switch's second job (§3.2) —
//! "allow BatteryLab to concurrently support multiple test devices
//! without having to manually move cables around" — exercised through
//! the controller and the job queue.

use batterylab::automation::Script;
use batterylab::controller::{ControllerError, VantageConfig, VantagePoint};
use batterylab::device::boot_j7_duo;
use batterylab::platform::{Platform, NODE_PORTS};
use batterylab::server::{BuildState, Constraints, ExperimentSpec, Payload};
use batterylab::sim::{SimDuration, SimRng, SimTime};

fn two_device_vantage(seed: u64) -> VantagePoint {
    two_device_vantage_named(seed, "node1")
}

fn two_device_vantage_named(seed: u64, name: &str) -> VantagePoint {
    let rng = SimRng::new(seed);
    let mut vp = VantagePoint::new(
        VantageConfig {
            name: name.to_string(),
            ..VantageConfig::imperial_college()
        },
        rng.derive("vp"),
    );
    for i in 0..2 {
        let d = boot_j7_duo(&rng, &format!("multi-{i}"));
        d.install_package("com.brave.browser");
        vp.add_device(d);
    }
    vp
}

#[test]
fn sequential_measurements_without_recabling() {
    let mut vp = two_device_vantage(901);
    vp.power_monitor().unwrap();
    vp.set_voltage(4.0).unwrap();

    let mut discharges = Vec::new();
    for serial in ["multi-0", "multi-1"] {
        vp.batt_switch(serial).unwrap(); // engage this device's bypass
        vp.start_monitor(serial).unwrap();
        let device = vp.device_handle(serial).unwrap();
        device.with_sim(|s| {
            s.set_screen(true);
            s.play_video(SimDuration::from_secs(10));
        });
        let report = vp.stop_monitor_at_rate(500.0).unwrap();
        discharges.push(report.mah());
        vp.batt_switch(serial).unwrap(); // release for the next device
    }
    assert_eq!(discharges.len(), 2);
    assert!(discharges.iter().all(|&m| m > 0.3));
}

#[test]
fn bypass_is_exclusive_across_devices() {
    let mut vp = two_device_vantage(902);
    vp.power_monitor().unwrap();
    vp.batt_switch("multi-0").unwrap();
    // The second device cannot grab the bypass while the first holds it.
    let err = vp.batt_switch("multi-1").unwrap_err();
    assert!(matches!(err, ControllerError::Relay(_)), "{err}");
    // Releasing frees it.
    vp.batt_switch("multi-0").unwrap();
    vp.batt_switch("multi-1").unwrap();
}

#[test]
fn measuring_one_device_while_other_works_on_battery() {
    let mut vp = two_device_vantage(903);
    vp.power_monitor().unwrap();
    vp.batt_switch("multi-0").unwrap();
    vp.start_monitor("multi-0").unwrap();

    // Device 1 (on its own battery) does heavy work concurrently.
    let other = vp.device_handle("multi-1").unwrap();
    let battery_before = other.with_sim(|s| s.battery().charge_mah());
    other.with_sim(|s| {
        s.set_screen(true);
        s.run_activity(SimDuration::from_secs(30), 0.6, 0.7);
    });
    assert!(other.with_sim(|s| s.battery().charge_mah()) < battery_before);

    // Device 0's measurement is unaffected by device 1's activity.
    let measured = vp.device_handle("multi-0").unwrap();
    measured.with_sim(|s| {
        s.set_screen(true);
        s.play_video(SimDuration::from_secs(10));
    });
    let report = vp.stop_monitor_at_rate(500.0).unwrap();
    let median = report.cdf().median();
    assert!(
        (145.0..180.0).contains(&median),
        "cross-talk from the other device: median {median}"
    );
}

#[test]
fn queue_runs_jobs_across_both_devices() {
    let mut platform = Platform::paper_testbed(904);
    // Add a second device to node1 via a fresh node (node1 is already
    // built); enrol a two-device node instead.
    let vp = two_device_vantage_named(904, "node-multi");
    platform
        .server
        .enroll_node(
            platform.admin_token,
            vp,
            "10.0.0.2",
            "hk:multi",
            &NODE_PORTS,
            SimTime::ZERO,
        )
        .unwrap();

    let script = Script::browser_workload("com.brave.browser", &["https://reuters.com"], 2);
    let mut ids = Vec::new();
    for serial in ["multi-0", "multi-1"] {
        ids.push(
            platform
                .server
                .submit_job(
                    platform.experimenter_token,
                    &format!("job-{serial}"),
                    Constraints {
                        device: Some(serial.to_string()),
                        ..Default::default()
                    },
                    Payload::Experiment(ExperimentSpec::measured(serial, script.clone())),
                )
                .unwrap(),
        );
    }
    platform.server.drain();
    for id in ids {
        assert_eq!(
            platform
                .server
                .build(platform.experimenter_token, id)
                .unwrap()
                .state,
            BuildState::Succeeded
        );
    }
}
