//! §3.3's automation matrix, cross-crate: the same script runs over every
//! backend that supports it, the constraints hold, and the "dynamic
//! switching" pattern (USB outside the measurement, WiFi/BT inside)
//! works end to end.

use batterylab::adb::{AdbKey, TransportKind};
use batterylab::automation::{
    Action, AdbBackend, AutomationBackend, AutomationError, BluetoothKeyboardBackend, Script,
    ScrollDir, UiTestBackend,
};
use batterylab::device::{AndroidDevice, DataPath, DeviceSpec};
use batterylab::sim::{SimDuration, SimRng};

fn rooted_device(seed: u64) -> AndroidDevice {
    let d = AndroidDevice::new(
        DeviceSpec::samsung_j7_duo().rooted(),
        "parity-dev",
        SimRng::new(seed).derive("d"),
        true,
    );
    d.install_package("com.brave.browser");
    d
}

fn key(seed: u64) -> AdbKey {
    AdbKey::generate("parity-host", seed)
}

#[test]
fn same_script_three_backends() {
    // A script all three backends can express (no package management for
    // the keyboard backend).
    let script = Script::new("parity")
        .then(Action::LaunchApp("com.brave.browser".into()))
        .then(Action::EnterUrl("https://news.bbc.co.uk".into()))
        .then(Action::Wait(SimDuration::from_secs(3)))
        .then(Action::Scroll(ScrollDir::Down))
        .then(Action::Scroll(ScrollDir::Up));

    let elapsed = |mut backend: Box<dyn AutomationBackend>, device: &AndroidDevice| {
        let t0 = device.with_sim(|s| s.now());
        backend.run_script(&script).expect("script runs");
        (device.with_sim(|s| s.now()) - t0).as_secs_f64()
    };

    let d1 = rooted_device(1);
    let adb = elapsed(
        Box::new(AdbBackend::connect(d1.clone(), TransportKind::WiFi, key(1)).unwrap()),
        &d1,
    );
    let d2 = rooted_device(2);
    let ui = elapsed(
        Box::new(UiTestBackend::install(d2.clone(), "com.brave.browser", true).unwrap()),
        &d2,
    );
    let d3 = rooted_device(3);
    let bt = elapsed(Box::new(BluetoothKeyboardBackend::pair(d3.clone())), &d3);

    // All three drive the device for a comparable span (same dwell, same
    // gestures — different input-channel overheads).
    for (name, secs) in [("adb", adb), ("ui", ui), ("bt", bt)] {
        assert!(
            (4.0..20.0).contains(&secs),
            "{name} backend consumed {secs}s"
        );
    }
    // The keyboard types character by character — slower input than the
    // ADB one-shot `input text` for the same URL.
    assert!(bt > adb * 0.8, "bt {bt} vs adb {adb}");
}

#[test]
fn constraint_matrix_matches_section_3_3() {
    // USB: reliable but measurement-unsafe.
    let d = rooted_device(4);
    let usb = AdbBackend::connect(d.clone(), TransportKind::Usb, key(4)).unwrap();
    assert!(!usb.measurement_safe());
    assert!(usb.supports_mirroring());
    usb.detach();

    // WiFi: measurement-safe, but not on cellular experiments.
    let d = rooted_device(5);
    d.with_sim(|s| s.set_data_path(DataPath::Cellular));
    assert!(matches!(
        AdbBackend::connect(d, TransportKind::WiFi, key(5)).map(|_| ()),
        Err(AutomationError::Constraint(_))
    ));

    // Bluetooth ADB: needs root.
    let unrooted = AndroidDevice::new(
        DeviceSpec::samsung_j7_duo(),
        "unrooted",
        SimRng::new(6).derive("d"),
        true,
    );
    assert!(matches!(
        AdbBackend::connect(unrooted, TransportKind::Bluetooth, key(6)).map(|_| ()),
        Err(AutomationError::Constraint(_))
    ));

    // BT keyboard: no root needed, works on cellular, but no mirroring.
    let d = rooted_device(7);
    d.with_sim(|s| s.set_data_path(DataPath::Cellular));
    let kb = BluetoothKeyboardBackend::pair(d);
    assert!(kb.measurement_safe());
    assert!(!kb.supports_mirroring());

    // UI tests: need source access.
    let d = rooted_device(8);
    assert!(matches!(
        UiTestBackend::install(d, "com.android.chrome", false).map(|_| ()),
        Err(AutomationError::Constraint(_))
    ));
}

/// §3.3's recommended pattern: ADB over USB for setup (cache cleaning),
/// detach the port, then Bluetooth keyboard for the measured phase.
#[test]
fn dynamic_backend_switching() {
    let device = rooted_device(9);

    // Phase 1: setup over USB (fast, reliable — but powers the device).
    let mut usb = AdbBackend::connect(device.clone(), TransportKind::Usb, key(9)).unwrap();
    usb.perform(&Action::ClearAppData("com.brave.browser".into()))
        .unwrap();
    assert!(device.with_sim(|s| s.state().usb_connected));
    usb.detach();
    assert!(
        !device.with_sim(|s| s.state().usb_connected),
        "uhubctl powered the port down"
    );

    // Phase 2: the measured run over the keyboard.
    let mut kb = BluetoothKeyboardBackend::pair(device.clone());
    kb.perform(&Action::LaunchApp("com.brave.browser".into()))
        .unwrap();
    kb.perform(&Action::EnterUrl("https://reuters.com".into()))
        .unwrap();
    kb.perform(&Action::Scroll(ScrollDir::Down)).unwrap();
    // Measurement-clean the whole time: no USB attached.
    assert!(!device.with_sim(|s| s.state().usb_connected));
}

#[test]
fn adb_transport_loss_mid_script_is_an_error_not_a_hang() {
    let device = rooted_device(10);
    let mut backend = AdbBackend::connect(device, TransportKind::WiFi, key(10)).unwrap();
    backend
        .perform(&Action::LaunchApp("com.brave.browser".into()))
        .unwrap();
    backend.link_mut().disconnect_transport();
    let err = backend
        .perform(&Action::Scroll(ScrollDir::Down))
        .unwrap_err();
    assert!(matches!(err, AutomationError::Adb(_)));
}
