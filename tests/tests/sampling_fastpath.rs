//! Equivalence of the segment-batched sampling fast path against the
//! retained per-sample reference path, across the whole meter chain.
//!
//! The contract under test (DESIGN.md §3e): for any piecewise-constant
//! load, `Monsoon::sample_run_at_rate` (segment-batched) and
//! `Monsoon::sample_run_reference_at_rate` (per-sample) produce
//! **bit-identical** output — samples, aggregates, counters and trip
//! errors — given the same RNG seed. Noise does not weaken this: both
//! paths consume exactly one standard normal per emitted sample in time
//! order, so even noisy runs match bit for bit.

use batterylab::device::boot_j7_duo;
use batterylab::power::{Calibration, Monsoon, MonsoonError, SampleRun, TraceLoad};
use batterylab::sim::{SimDuration, SimRng, SimTime, StepSignal};
use proptest::prelude::*;

fn powered(seed: u64, cal: Calibration) -> Monsoon {
    let mut m = Monsoon::new(SimRng::new(seed).derive("monsoon")).with_calibration(cal);
    m.set_powered(true);
    m.set_voltage(4.0).unwrap();
    m.enable_vout().unwrap();
    m
}

fn noise_free() -> Calibration {
    Calibration {
        gain: 1.0005,
        offset_ma: 0.03,
        noise_ma: 0.0,
        lsb_ma: 0.02,
    }
}

/// Build a step trace from `(gap_us, value_ma)` deltas.
fn trace_from_steps(initial: f64, steps: &[(u64, f64)]) -> StepSignal {
    let mut signal = StepSignal::new(initial);
    let mut t = 0u64;
    for &(gap_us, value) in steps {
        t += gap_us;
        signal.set(SimTime::from_micros(t), value);
    }
    signal
}

fn assert_runs_bit_identical(fast: &SampleRun, reference: &SampleRun) {
    assert_eq!(fast.samples.len(), reference.samples.len());
    assert_eq!(fast.samples.times(), reference.samples.times());
    for (a, b) in fast.samples.values().iter().zip(reference.samples.values()) {
        assert_eq!(a.to_bits(), b.to_bits(), "sample mismatch: {a} vs {b}");
    }
    assert_eq!(fast.energy.samples(), reference.energy.samples());
    assert_eq!(
        fast.energy.mah().to_bits(),
        reference.energy.mah().to_bits()
    );
    assert_eq!(
        fast.energy.mwh().to_bits(),
        reference.energy.mwh().to_bits()
    );
    assert_eq!(
        fast.energy.min_ma().to_bits(),
        reference.energy.min_ma().to_bits()
    );
    assert_eq!(
        fast.energy.max_ma().to_bits(),
        reference.energy.max_ma().to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Noise-free: the fast path is bit-for-bit the reference path over
    /// randomised step traces, durations and (decimated) rates.
    #[test]
    fn segmented_matches_reference_bit_for_bit_noise_free(
        seed in 0u64..1000,
        initial in 0.0f64..1500.0,
        steps in proptest::collection::vec((1u64..40_000, 0.0f64..1500.0), 0..12),
        duration_ms in 20u64..300,
        rate_pick in 0usize..3,
    ) {
        let rate = [5000.0f64, 1000.0, 137.0][rate_pick];
        let load = TraceLoad::new(trace_from_steps(initial, &steps), 4.0);
        let duration_s = duration_ms as f64 / 1000.0;
        let fast = powered(seed, noise_free())
            .sample_run_at_rate(&load, SimTime::ZERO, duration_s, rate)
            .unwrap();
        let reference = powered(seed, noise_free())
            .sample_run_reference_at_rate(&load, SimTime::ZERO, duration_s, rate)
            .unwrap();
        assert_runs_bit_identical(&fast, &reference);
    }

    /// Noisy: still bit-for-bit — both paths draw one standard normal
    /// per emitted sample from the same stream, in time order — and the
    /// noise actually lands (the trace is not constant-quantised).
    #[test]
    fn segmented_matches_reference_bit_for_bit_noisy(
        seed in 0u64..1000,
        initial in 50.0f64..1500.0,
        steps in proptest::collection::vec((1u64..40_000, 0.0f64..1500.0), 0..12),
    ) {
        let load = TraceLoad::new(trace_from_steps(initial, &steps), 4.0);
        let fast = powered(seed, Calibration::default())
            .sample_run_at_rate(&load, SimTime::ZERO, 0.2, 5000.0)
            .unwrap();
        let reference = powered(seed, Calibration::default())
            .sample_run_reference_at_rate(&load, SimTime::ZERO, 0.2, 5000.0)
            .unwrap();
        assert_runs_bit_identical(&fast, &reference);
        // Statistical sanity: with a 0.25 mA RMS floor the 1000-sample
        // trace cannot collapse to a single quantised reading.
        let distinct: std::collections::BTreeSet<u64> =
            fast.samples.values().iter().map(|v| v.to_bits()).collect();
        prop_assert!(distinct.len() > 3, "noise missing: {} distinct readings", distinct.len());
    }

    /// A monotone cursor walk over a random trace reads exactly what
    /// binary-searched `at()` reads, at every sample instant.
    #[test]
    fn cursor_agrees_with_binary_search_at(
        initial in 0.0f64..100.0,
        steps in proptest::collection::vec((1u64..5_000, 0.0f64..100.0), 0..20),
        period_us in 1u64..700,
    ) {
        let signal = trace_from_steps(initial, &steps);
        let mut cursor = signal.cursor();
        for k in 0..200u64 {
            let t = SimTime::from_micros(k * period_us);
            prop_assert_eq!(cursor.at(t).to_bits(), signal.at(t).to_bits());
        }
    }
}

/// Over-current mid-run: the segmented path trips at the same sample
/// instant, with the same current, the same error and the same sample
/// accounting as the reference path.
#[test]
fn over_current_trip_is_path_invariant() {
    // Healthy for 61.3 ms (boundary off the sample grid), then over the
    // 6 A limit.
    let mut trace = StepSignal::new(150.0);
    trace.set(SimTime::from_micros(61_300), 6900.0);
    let load = TraceLoad::new(trace, 4.0);

    let mut fast_meter = powered(77, Calibration::default());
    let fast = fast_meter
        .sample_run_at_rate(&load, SimTime::ZERO, 0.2, 5000.0)
        .unwrap_err();
    let mut ref_meter = powered(77, Calibration::default());
    let reference = ref_meter
        .sample_run_reference_at_rate(&load, SimTime::ZERO, 0.2, 5000.0)
        .unwrap_err();

    assert_eq!(fast, reference);
    let MonsoonError::OverCurrent { at, current_ma } = fast else {
        panic!("expected an over-current trip, got {fast:?}");
    };
    // First sample instant inside the over-limit segment: 61.4 ms.
    assert_eq!(at, SimTime::from_micros(61_400));
    assert!((current_ma - 6900.0).abs() < 1e-9);
    assert_eq!(fast_meter.total_samples(), ref_meter.total_samples());
    assert_eq!(fast_meter.total_samples(), 307);
}

/// The full meter chain — simulated Android device behind the relay's
/// measurement path — batches through `CurrentSource::segments` with
/// output bit-identical to the per-sample reference.
#[test]
fn device_chain_is_bit_identical_across_paths() {
    let rng = SimRng::new(4242);
    let device = boot_j7_duo(&rng, "fastpath-dev");
    device.with_sim(|s| {
        s.set_screen(true);
        s.run_activity(SimDuration::from_secs(2), 0.4, 0.6);
        s.idle(SimDuration::from_secs(1));
    });
    let fast = powered(4242, Calibration::default())
        .sample_run_at_rate(&device, SimTime::ZERO, 3.0, 5000.0)
        .unwrap();
    let reference = powered(4242, Calibration::default())
        .sample_run_reference_at_rate(&device, SimTime::ZERO, 3.0, 5000.0)
        .unwrap();
    assert_runs_bit_identical(&fast, &reference);
    assert_eq!(fast.samples.len(), 15_000);
}
