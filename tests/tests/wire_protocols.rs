//! Fuzz-flavoured property tests of every wire protocol in the stack:
//! ADB packets reassembled from arbitrary fragmentation, SSH frames, VNC
//! websocket wrapping — the incremental-decoder paths that only break
//! under hostile byte boundaries.

use batterylab::adb::wire::{checksum, Packet, A_CLSE, A_CNXN, A_OKAY, A_OPEN, A_WRTE};
use batterylab::mirror::{framebuffer_update, websocket_wrap};
use batterylab::server::ssh::{decode_frame, encode_frame};
use bytes::BytesMut;
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        prop::sample::select(vec![A_CNXN, A_OPEN, A_OKAY, A_WRTE, A_CLSE]),
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..2048),
    )
        .prop_map(|(cmd, a0, a1, payload)| Packet::new(cmd, a0, a1, payload))
}

proptest! {
    /// A stream of packets, chopped at arbitrary byte boundaries, decodes
    /// to exactly the original sequence.
    #[test]
    fn adb_reassembles_any_fragmentation(
        packets in proptest::collection::vec(arb_packet(), 1..6),
        cuts in proptest::collection::vec(1usize..64, 0..32),
    ) {
        let mut wire = Vec::new();
        for p in &packets {
            wire.extend_from_slice(&p.encode());
        }
        // Feed the decoder in fragments sized by `cuts` (cycled).
        let mut rx = BytesMut::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut cut_idx = 0;
        while offset < wire.len() {
            let step = if cuts.is_empty() {
                wire.len()
            } else {
                cuts[cut_idx % cuts.len()]
            };
            cut_idx += 1;
            let end = (offset + step).min(wire.len());
            rx.extend_from_slice(&wire[offset..end]);
            offset = end;
            while let Some(p) = Packet::decode(&mut rx).unwrap() {
                decoded.push(p);
            }
        }
        prop_assert_eq!(decoded, packets);
        prop_assert!(rx.is_empty(), "no residue");
    }

    /// Checksum detects any single corrupted payload byte.
    #[test]
    fn adb_checksum_catches_payload_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        victim in any::<prop::sample::Index>(),
        delta in 1u8..=255,
    ) {
        let p = Packet::new(A_WRTE, 0, 0, payload.clone());
        let mut wire = p.encode().to_vec();
        let idx = 24 + victim.index(payload.len());
        wire[idx] = wire[idx].wrapping_add(delta);
        let mut buf = BytesMut::from(&wire[..]);
        // Either checksum error, or — if the sum happens to collide
        // (wrapping add of a multiple of 256 across bytes can't happen for
        // a single byte) — never the original packet.
        match Packet::decode(&mut buf) {
            Err(_) => {}
            Ok(Some(q)) => prop_assert_ne!(q, p),
            Ok(None) => {}
        }
    }

    /// SSH frames survive concatenation and arbitrary split points.
    #[test]
    fn ssh_frames_reassemble(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..512), 1..8)) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&encode_frame(p));
        }
        let mut buf = BytesMut::from(&wire[..]);
        let mut decoded = Vec::new();
        while let Some(f) = decode_frame(&mut buf).unwrap() {
            decoded.push(f);
        }
        prop_assert_eq!(decoded, payloads);
    }

    /// The VNC framebuffer header always carries the payload length, and
    /// websocket wrapping always produces a parseable length field.
    #[test]
    fn vnc_framing_lengths(payload in proptest::collection::vec(any::<u8>(), 0..100_000)) {
        let fb = framebuffer_update(1080, 1920, &payload);
        prop_assert_eq!(fb.len(), 16 + 4 + payload.len());
        let declared = u32::from_be_bytes([fb[16], fb[17], fb[18], fb[19]]) as usize;
        prop_assert_eq!(declared, payload.len());

        let ws = websocket_wrap(&payload);
        prop_assert_eq!(ws[0], 0x82);
        let body_len = match ws[1] {
            126 => u16::from_be_bytes([ws[2], ws[3]]) as usize,
            127 => u64::from_be_bytes([ws[2], ws[3], ws[4], ws[5], ws[6], ws[7], ws[8], ws[9]]) as usize,
            n => n as usize,
        };
        let header = match ws[1] {
            126 => 4,
            127 => 10,
            _ => 2,
        };
        prop_assert_eq!(ws.len(), header + body_len);
    }

    /// The ADB byte-sum is order-independent and additive — the properties
    /// the daemon's streaming writer relies on when chunking.
    #[test]
    fn adb_checksum_is_additive(a in proptest::collection::vec(any::<u8>(), 0..256),
                                b in proptest::collection::vec(any::<u8>(), 0..256)) {
        let joined: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(
            checksum(&joined),
            checksum(&a).wrapping_add(checksum(&b))
        );
    }
}
