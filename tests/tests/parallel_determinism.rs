//! Golden determinism: the parallel evaluation harness must produce
//! byte-identical artifacts for any worker count. We run fig2 and fig3
//! at `--jobs 1` and `--jobs 4` and compare every exported byte —
//! including the merged platform telemetry snapshot, whose counters,
//! histograms and journal come back through `Registry::merge`.

use batterylab::eval::{export, fig2, fig3, table2, EvalConfig};

fn quick() -> EvalConfig {
    EvalConfig {
        fig2_duration_s: 10.0,
        ..EvalConfig::quick(77)
    }
}

#[test]
fn fig2_export_identical_across_job_counts() {
    let serial = fig2::run(&quick().with_jobs(1));
    let parallel = fig2::run(&quick().with_jobs(4));
    assert_eq!(
        export::cdf_series_csv(&export::fig2_series(&serial)),
        export::cdf_series_csv(&export::fig2_series(&parallel)),
    );
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn fig3_bars_and_platform_metrics_identical_across_job_counts() {
    let serial = fig3::run(&quick().with_jobs(1));
    let parallel = fig3::run(&quick().with_jobs(4));
    assert_eq!(
        export::bars_csv(&export::fig3_bars(&serial)),
        export::bars_csv(&export::fig3_bars(&parallel)),
    );
    // The merged telemetry snapshot is the hard part: per-run registries
    // merge back in descriptor order, so the JSON must match byte for
    // byte — counters, histogram buckets, journal lines and all.
    assert_eq!(serial.metrics.to_json(), parallel.metrics.to_json());
}

#[test]
fn oversubscribed_jobs_change_nothing() {
    // More workers than runs: the pool clamps, the output doesn't care.
    let serial = table2::run(&quick().with_jobs(1));
    let flooded = table2::run(&quick().with_jobs(64));
    for ((la, ra), (lb, rb)) in serial.rows.iter().zip(&flooded.rows) {
        assert_eq!(la, lb);
        assert_eq!(ra.down_mbps.to_bits(), rb.down_mbps.to_bits());
        assert_eq!(ra.up_mbps.to_bits(), rb.up_mbps.to_bits());
        assert_eq!(ra.latency_ms.to_bits(), rb.latency_ms.to_bits());
    }
}

#[test]
fn auto_jobs_matches_serial() {
    // `jobs = 0` resolves to the machine's parallelism, whatever it is.
    let serial = fig2::run(&quick().with_jobs(1));
    let auto = fig2::run(&quick().with_jobs(0));
    assert_eq!(serial.render(), auto.render());
}
