//! placeholder
